"""Tests for the parallel campaign engine and its result cache.

The load-bearing guarantee: ``jobs=1``, ``jobs=4``, and a warm-cache
run all serialise *byte-identically* to the seed's serial loop, so
parallelism and caching are pure speed, never a result change.
"""

import json
import multiprocessing
import time

import pytest

from repro.core import results_io
from repro.core.campaign import (
    CampaignCell,
    ResultCache,
    cache_key,
    config_fingerprint,
    run_campaign,
    simulate_cell,
)
from repro.core.experiments import (
    ExperimentResult,
    figure_configs,
    run_fig13,
)
from repro.core.machines import baseline_8way
from repro.core.results_io import result_to_dict
from repro.uarch.pipeline import simulate
from repro.workloads import WORKLOAD_NAMES, get_trace

#: Short runs keep the suite fast; equality assertions are exact.
N = 1_000


def serialise(result: ExperimentResult) -> str:
    """Canonical bytes of a result (what ``save_result`` writes)."""
    return json.dumps(result_to_dict(result), sort_keys=True)


@pytest.fixture(scope="module")
def fig13_grid():
    return figure_configs("fig13")


@pytest.fixture(scope="module")
def seed_serial_json(fig13_grid):
    """The seed's serial path, replicated literally: one process, one
    nested loop, no engine."""
    result = ExperimentResult(
        name="fig13",
        machine_names=list(fig13_grid),
        workloads=list(WORKLOAD_NAMES),
    )
    for machine, config in fig13_grid.items():
        result.stats[machine] = {
            workload: simulate(config, get_trace(workload, N))
            for workload in WORKLOAD_NAMES
        }
    return serialise(result)


# ----------------------------------------------------------------------
# injectable cell runners (module-level: must survive pickling)
# ----------------------------------------------------------------------


def _fails_in_worker(cell: CampaignCell) -> dict:
    """Raise in pool workers, succeed in the parent process."""
    if multiprocessing.parent_process() is not None:
        raise RuntimeError("injected worker failure")
    return simulate_cell(cell)


def _hangs_in_worker(cell: CampaignCell) -> dict:
    """Outlive any reasonable timeout in workers; instant in parent."""
    if multiprocessing.parent_process() is not None:
        time.sleep(30.0)
    return simulate_cell(cell)


def _always_fails(cell: CampaignCell) -> dict:
    raise RuntimeError("injected permanent failure")


def _forbidden(cell: CampaignCell) -> dict:
    raise AssertionError(f"cell {cell.label} simulated despite warm cache")


class TestDeterminism:
    """Satellite: engine output equals the seed serial path exactly."""

    def test_jobs1_equals_seed(self, seed_serial_json):
        assert serialise(run_fig13(max_instructions=N)) == seed_serial_json

    def test_jobs4_equals_seed(self, fig13_grid, seed_serial_json):
        result, profile = run_campaign(
            fig13_grid, max_instructions=N, name="fig13", jobs=4
        )
        assert profile.jobs == 4
        assert serialise(result) == seed_serial_json

    def test_warm_cache_equals_seed_with_zero_simulations(
        self, fig13_grid, seed_serial_json, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        cold, cold_profile = run_campaign(
            fig13_grid, max_instructions=N, name="fig13", jobs=4, cache=cache
        )
        assert cold_profile.cache_hits == 0
        assert serialise(cold) == seed_serial_json
        # Warm rerun: every cell from cache, zero simulations -- the
        # forbidden runner proves nothing executes.
        warm, warm_profile = run_campaign(
            fig13_grid, max_instructions=N, name="fig13", jobs=4,
            cache=cache, runner=_forbidden,
        )
        assert warm_profile.cache_hits == warm_profile.cell_count
        assert warm_profile.cache_hits == len(fig13_grid) * len(WORKLOAD_NAMES)
        assert warm_profile.simulated_cells == 0
        assert serialise(warm) == seed_serial_json

    def test_stats_dicts_equal_not_just_close(self, fig13_grid):
        result, _ = run_campaign(
            fig13_grid, max_instructions=N, name="fig13", jobs=2
        )
        for machine, config in fig13_grid.items():
            for workload in WORKLOAD_NAMES:
                direct = simulate(config, get_trace(workload, N))
                assert (
                    result.stats[machine][workload].to_dict()
                    == direct.to_dict()
                )

    def test_merge_order_is_presentation_order(self, fig13_grid):
        result, _ = run_campaign(
            fig13_grid, max_instructions=N, name="fig13", jobs=4
        )
        assert list(result.stats) == list(fig13_grid)
        for machine in result.stats:
            assert list(result.stats[machine]) == list(WORKLOAD_NAMES)


class TestCacheKey:
    """Satellite: the key covers everything that changes the result."""

    def test_key_changes_with_machine_config(self):
        assert cache_key(baseline_8way(), "li", N) != cache_key(
            baseline_8way(issue_width=4), "li", N
        )

    def test_key_changes_with_workload(self):
        assert cache_key(baseline_8way(), "li", N) != cache_key(
            baseline_8way(), "gcc", N
        )

    def test_key_changes_with_instruction_count(self):
        assert cache_key(baseline_8way(), "li", N) != cache_key(
            baseline_8way(), "li", N + 1
        )

    def test_key_changes_with_format_version(self):
        current = cache_key(baseline_8way(), "li", N)
        bumped = cache_key(
            baseline_8way(), "li", N,
            stats_format=results_io.FORMAT_VERSION + 1,
        )
        assert current != bumped

    def test_key_is_stable(self):
        assert cache_key(baseline_8way(), "li", N) == cache_key(
            baseline_8way(), "li", N
        )

    def test_fingerprint_is_json_primitives(self):
        fingerprint = config_fingerprint(baseline_8way())
        json.dumps(fingerprint)  # must not need custom encoders
        assert fingerprint["steering"] == "none"
        assert fingerprint["clusters"][0]["window_size"] == 64

    def test_current_format_version_is_3(self):
        # The clock/BIPS fields bumped the stats format; the key
        # embeds it, so pre-bump cache entries can never be served.
        assert results_io.FORMAT_VERSION == 3
        assert cache_key(baseline_8way(), "li", N, stats_format=2) != cache_key(
            baseline_8way(), "li", N
        )

    def test_key_changes_with_scheduler_strategy(self):
        # Identical geometry, different issue logic: the strategy
        # identity keeps the cells apart even if the fingerprint ever
        # stopped covering the strategy fields.
        from repro.core.machines import load_tracking_8way

        assert cache_key(baseline_8way(), "li", N) != cache_key(
            load_tracking_8way(), "li", N
        )

    def test_key_changes_with_regfile_strategy(self):
        from repro.core.machines import ports_limited_8way

        # read_ports=16 never binds, so the *behaviour* matches the
        # unlimited baseline -- but the model differs, and a future
        # version bump of either must not serve stale entries.
        assert cache_key(baseline_8way(), "li", N) != cache_key(
            ports_limited_8way(read_ports=16), "li", N
        )

    def test_key_changes_with_strategy_version(self, monkeypatch):
        from repro.uarch.scheduler import ConventionalScheduler, strategy_identity

        before = cache_key(baseline_8way(), "li", N)
        identity = strategy_identity(baseline_8way())
        assert identity == "sched:conventional@1+regfile:unlimited@1"
        monkeypatch.setattr(ConventionalScheduler, "version", 2)
        assert strategy_identity(baseline_8way()).startswith(
            "sched:conventional@2"
        )
        assert cache_key(baseline_8way(), "li", N) != before

    def test_key_changes_with_compile_version(self, monkeypatch):
        # Workers simulate with mode="compiled"; a codegen change
        # bumps COMPILE_VERSION and must invalidate every cached cell,
        # exactly like PREANALYSIS_VERSION before it.
        import repro.core.campaign as campaign_mod

        before = cache_key(baseline_8way(), "li", N)
        monkeypatch.setattr(
            campaign_mod, "COMPILE_VERSION",
            campaign_mod.COMPILE_VERSION + 1,
        )
        assert cache_key(baseline_8way(), "li", N) != before

    def test_key_changes_when_kernel_source_is_edited(self, monkeypatch):
        # THE staleness fix this PR exists for: the key hashes the
        # workload's *content* (the kernel's assembly source), not just
        # its name, so editing li.s misses every cached cell instead of
        # silently serving the old kernel's stats.
        from repro.workloads import li

        original = li.source()
        before = cache_key(baseline_8way(), "li", N)
        monkeypatch.setattr(li, "source", lambda: original + "\n# edited\n")
        assert cache_key(baseline_8way(), "li", N) != before
        # Other workloads' cells are untouched by the edit.
        assert cache_key(baseline_8way(), "gcc", N) == cache_key(
            baseline_8way(), "gcc", N
        )

    def test_key_changes_with_workload_version(self, monkeypatch):
        import repro.workloads.registry as registry_mod

        before = cache_key(baseline_8way(), "li", N)
        monkeypatch.setattr(
            registry_mod, "WORKLOAD_VERSION",
            registry_mod.WORKLOAD_VERSION + 1,
        )
        assert cache_key(baseline_8way(), "li", N) != before

    def test_grid_fingerprint_changes_when_kernel_source_is_edited(
        self, monkeypatch
    ):
        from repro.core.campaign import grid_fingerprint
        from repro.workloads import li

        grid = {"baseline": baseline_8way()}
        original = li.source()
        before = grid_fingerprint(grid, WORKLOAD_NAMES, N)
        monkeypatch.setattr(li, "source", lambda: original + "\n# edited\n")
        assert grid_fingerprint(grid, WORKLOAD_NAMES, N) != before

    def test_unregistered_workload_still_gets_a_key(self):
        # Runner-injected test workloads are not in the registry; the
        # key falls back to a name-only identity instead of raising.
        assert cache_key(baseline_8way(), "not-a-workload", N) != cache_key(
            baseline_8way(), "another-fake", N
        )

    def test_fifo_geometry_is_single_valued_in_the_fingerprint(self):
        # ClusterConfig normalises window_size to the FIFO capacity,
        # so two spellings of the same geometry share a cache cell.
        from repro.core.machines import dependence_based_8way

        a = config_fingerprint(dependence_based_8way(fifo_count=4))
        assert a["clusters"][0]["window_size"] == 32
        assert cache_key(
            dependence_based_8way(fifo_count=4), "li", N
        ) == cache_key(dependence_based_8way(fifo_count=4), "li", N)


class TestResultCache:
    """Satellite: corrupted entries are discarded, never trusted."""

    @pytest.fixture
    def entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        stats = simulate(baseline_8way(), get_trace("li", 500))
        key = cache_key(baseline_8way(), "li", 500)
        cache.store(key, stats)
        return cache, key, stats

    def test_roundtrip(self, entry):
        cache, key, stats = entry
        assert cache.load(key).to_dict() == stats.to_dict()

    def test_missing_entry_is_none(self, tmp_path):
        assert ResultCache(tmp_path).load("0" * 64) is None

    def test_corrupted_entry_discarded(self, entry):
        cache, key, _ = entry
        cache.path(key).write_text("{not json at all", encoding="utf-8")
        assert cache.load(key) is None
        assert not cache.path(key).exists()  # unlinked, will recompute

    def test_truncated_entry_discarded(self, entry):
        cache, key, _ = entry
        text = cache.path(key).read_text(encoding="utf-8")
        cache.path(key).write_text(text[: len(text) // 2], encoding="utf-8")
        assert cache.load(key) is None
        assert not cache.path(key).exists()

    def test_foreign_payload_discarded(self, entry):
        cache, key, _ = entry
        cache.path(key).write_text(
            json.dumps({"kind": "something-else"}), encoding="utf-8"
        )
        assert cache.load(key) is None

    def test_version_mismatch_discarded(self, entry):
        cache, key, stats = entry
        payload = results_io.stats_payload(stats)
        payload["format_version"] = 999
        cache.path(key).write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(key) is None

    def test_campaign_recomputes_corrupted_cells(self, tmp_path):
        configs = {"baseline": baseline_8way()}
        cache = ResultCache(tmp_path / "cache")
        first, _ = run_campaign(
            configs, workloads=("li", "gcc"), max_instructions=500,
            cache=cache,
        )
        corrupt = cache.path(cache_key(baseline_8way(), "li", 500))
        corrupt.write_text("garbage", encoding="utf-8")
        second, profile = run_campaign(
            configs, workloads=("li", "gcc"), max_instructions=500,
            cache=cache,
        )
        assert profile.cache_hits == 1  # gcc survived
        assert profile.simulated_cells == 1  # li recomputed, not crashed
        assert serialise(second) == serialise(first)


class TestFailureHandling:
    GRID = ("li",)  # one cell keeps the failure tests fast

    def test_serial_retry_then_success(self):
        calls = {"n": 0}

        def flaky(cell):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first attempt fails")
            return simulate_cell(cell)

        result, profile = run_campaign(
            {"baseline": baseline_8way()}, workloads=self.GRID,
            max_instructions=500, retries=1, runner=flaky,
        )
        assert calls["n"] == 2
        assert profile.retries == 1
        assert result.stats["baseline"]["li"].committed == 500

    def test_serial_retries_are_bounded(self):
        with pytest.raises(RuntimeError, match="permanent"):
            run_campaign(
                {"baseline": baseline_8way()}, workloads=self.GRID,
                max_instructions=500, retries=2, runner=_always_fails,
            )

    def test_worker_failure_degrades_to_serial(self):
        result, profile = run_campaign(
            {"baseline": baseline_8way()}, workloads=self.GRID,
            max_instructions=500, jobs=2, retries=1,
            runner=_fails_in_worker,
        )
        assert profile.retries == 1
        assert profile.serial_fallbacks == 1
        assert result.stats["baseline"]["li"].committed == 500

    def test_worker_timeout_degrades_to_serial(self):
        result, profile = run_campaign(
            {"baseline": baseline_8way()}, workloads=self.GRID,
            max_instructions=500, jobs=2, timeout=0.25, retries=0,
            runner=_hangs_in_worker,
        )
        assert profile.timeouts == 1
        assert profile.serial_fallbacks == 1
        assert result.stats["baseline"]["li"].committed == 500

    def test_parallel_and_fallback_results_identical(self):
        reference, _ = run_campaign(
            {"baseline": baseline_8way()}, workloads=self.GRID,
            max_instructions=500,
        )
        degraded, _ = run_campaign(
            {"baseline": baseline_8way()}, workloads=self.GRID,
            max_instructions=500, jobs=2, retries=0,
            runner=_fails_in_worker,
        )
        assert serialise(degraded) == serialise(reference)

    def test_argument_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign({"baseline": baseline_8way()}, jobs=0)
        with pytest.raises(ValueError, match="retries"):
            run_campaign({"baseline": baseline_8way()}, retries=-1)


class TestCampaignProfile:
    def test_counts_and_throughput(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _, cold = run_campaign(
            {"baseline": baseline_8way()}, workloads=("li", "gcc"),
            max_instructions=500, cache=cache,
        )
        assert cold.cell_count == 2
        assert cold.simulated_cells == 2
        assert cold.simulated_instructions == 1_000
        assert cold.instructions_per_second > 0
        payload = cold.to_dict()
        json.dumps(payload)
        assert payload["cache_hits"] == 0
        assert len(payload["cells"]) == 2
        assert "cells (0 cache hits, 2 simulated)" in cold.format_report()

    def test_cell_payload_roundtrip(self):
        stats = simulate(baseline_8way(), get_trace("li", 500))
        payload = results_io.stats_payload(stats)
        assert (
            results_io.stats_from_payload(payload).to_dict()
            == stats.to_dict()
        )
        with pytest.raises(ValueError, match="cell-stats"):
            results_io.stats_from_payload({"kind": "other"})
        with pytest.raises(ValueError, match="object"):
            results_io.stats_from_payload([1, 2])


class TestCounterCacheAudit:
    """Cycle-skip attribution and pre-analysis versioning survive the
    cache: warm hits return byte-identical counters, and bumping the
    derived-data version invalidates every key."""

    def test_key_changes_with_preanalysis_version(self, monkeypatch):
        from repro.core import campaign as campaign_mod

        before = cache_key(baseline_8way(), "li", N)
        monkeypatch.setattr(
            campaign_mod, "PREANALYSIS_VERSION",
            campaign_mod.PREANALYSIS_VERSION + 1,
        )
        assert cache_key(baseline_8way(), "li", N) != before

    def test_warm_hit_preserves_cycle_skip_attribution(self, tmp_path):
        """The optimized simulator folds skipped idle cycles into the
        stall/issue counters; a cache hit must reproduce them exactly."""
        grid = {"baseline": baseline_8way()}
        cache = ResultCache(tmp_path / "cache")
        cold, _ = run_campaign(
            grid, workloads=("li",), max_instructions=N, cache=cache
        )
        warm, profile = run_campaign(
            grid, workloads=("li",), max_instructions=N, cache=cache,
            runner=_forbidden,
        )
        assert profile.cache_hits == 1
        cold_stats = cold.stats["baseline"]["li"]
        warm_stats = warm.stats["baseline"]["li"]
        warm_stats.validate()
        assert json.dumps(warm_stats.to_dict(), sort_keys=True) == (
            json.dumps(cold_stats.to_dict(), sort_keys=True)
        )
        # The run really exercised cycle skipping (idle cycles show up
        # as zero-issue rows), so the equality above is load-bearing.
        assert warm_stats.issue_histogram.get(0, 0) > 0


class TestHeartbeats:
    """Live telemetry: one Heartbeat per completed cell."""

    def test_cold_run_emits_simulated_beats(self, fig13_grid, tmp_path):
        beats = []
        result, profile = run_campaign(
            fig13_grid, max_instructions=N,
            cache=ResultCache(tmp_path / "cache"), heartbeat=beats.append,
        )
        assert len(beats) == profile.cell_count
        assert {b.source for b in beats} == {"simulated"}
        assert {b.label for b in beats} == {
            f"{machine}/{workload}"
            for machine in fig13_grid for workload in WORKLOAD_NAMES
        }
        assert sum(b.instructions for b in beats) == (
            profile.simulated_instructions)
        assert all(b.seconds > 0 for b in beats)

    def test_warm_run_emits_cache_beats(self, fig13_grid, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(fig13_grid, max_instructions=N, cache=cache)
        beats = []
        _, profile = run_campaign(
            fig13_grid, max_instructions=N, cache=cache,
            heartbeat=beats.append,
        )
        assert profile.simulated_cells == 0
        assert len(beats) == profile.cell_count
        assert {b.source for b in beats} == {"cache"}

    def test_parallel_run_beats_cover_every_cell(self, fig13_grid):
        beats = []
        _, profile = run_campaign(
            fig13_grid, max_instructions=N, jobs=2, cache=None,
            heartbeat=beats.append,
        )
        assert len(beats) == profile.cell_count
        assert {b.source for b in beats} == {"simulated"}


class TestCampaignMetrics:
    """The exact-merge contract between workers and the parent."""

    def worker_payloads(self, fig13_grid):
        config = fig13_grid[next(iter(fig13_grid))]
        cells = [
            CampaignCell(machine="m", config=config, workload=workload,
                         max_instructions=N)
            for workload in WORKLOAD_NAMES[:2]
        ]
        return [simulate_cell(cell)["metrics"] for cell in cells]

    def test_worker_payload_merge_is_order_independent(self, fig13_grid):
        # Acceptance: two workers' snapshots merge byte-identically
        # regardless of which finishes first.
        from repro.obs.metrics import MetricsSnapshot

        a, b = [MetricsSnapshot.from_dict(p)
                for p in self.worker_payloads(fig13_grid)]
        assert (MetricsSnapshot.merge_all([a, b]).canonical_json()
                == MetricsSnapshot.merge_all([b, a]).canonical_json())

    def test_serial_and_parallel_runs_agree_exactly(self, fig13_grid):
        # Deterministic series (instruction/cycle/cell counts) are
        # identical for jobs=1 and jobs=N; only wall times may differ.
        serial_result, serial = run_campaign(
            fig13_grid, max_instructions=N, jobs=1, cache=None)
        parallel_result, parallel = run_campaign(
            fig13_grid, max_instructions=N, jobs=2, cache=None)
        assert serialise(serial_result) == serialise(parallel_result)
        for name in ("sim_instructions_total", "sim_cycles_total",
                     "campaign_cells_total",
                     "campaign_instructions_total"):
            assert serial.registry.labeled_values(name) == (
                parallel.registry.labeled_values(name)), name

    def test_profile_metrics_cover_cache_and_simulated(
            self, fig13_grid, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(fig13_grid, max_instructions=N, cache=cache)
        _, warm = run_campaign(fig13_grid, max_instructions=N, cache=cache)
        values = warm.registry.labeled_values("campaign_cells_total")
        assert values[(("source", "cache"),)] == warm.cell_count


class TestCampaignLedgerCli:
    """Acceptance: every CLI campaign run appends a ledger entry; the
    warm rerun records simulated_cells == 0."""

    def test_warm_rerun_appends_zero_simulation_entry(
            self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.ledger import Ledger

        argv = ["campaign", "fig13", "-n", "400",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert main(argv) == 0
        assert "ledger: recorded campaign run" in capsys.readouterr().out

        cold, warm = Ledger().entries(kind="campaign")
        assert cold.simulated_cells == cold.cell_count > 0
        assert cold.cache_hits == 0
        assert warm.simulated_cells == 0
        assert warm.cache_hits == warm.cell_count == cold.cell_count
        assert warm.instructions_per_second == 0.0
        assert warm.config_hash == cold.config_hash != ""
        assert warm.metrics["kind"] == "repro-metrics-snapshot"
