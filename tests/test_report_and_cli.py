"""Tests for the report renderers and the command-line interface."""

import pytest

from repro.cli import MACHINES, build_parser, main
from repro.report import bar_chart, grouped_bar_chart, text_table


class TestTextTable:
    def test_alignment(self):
        table = text_table(["name", "value"], [["a", 1.5], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # rectangular

    def test_float_formatting(self):
        assert "1.500" in text_table(["x"], [[1.5]])

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="row width"):
            text_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        table = text_table(["a"], [])
        assert "a" in table


class TestBarCharts:
    def test_peak_fills_width(self):
        chart = bar_chart({"x": 1.0, "y": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_unit_suffix(self):
        assert "2.000 IPC" in bar_chart({"x": 2.0}, unit=" IPC")

    def test_zero_values_ok(self):
        chart = bar_chart({"x": 0.0, "y": 0.0})
        assert "|" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": 1.0}, width=0)
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})

    def test_grouped(self):
        chart = grouped_bar_chart(
            {"compress": {"base": 2.0, "dep": 1.9},
             "gcc": {"base": 3.0, "dep": 2.8}}
        )
        assert "compress:" in chart
        assert chart.count("|") == 4

    def test_grouped_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})
        with pytest.raises(ValueError, match="same bars"):
            grouped_bar_chart({"a": {"x": 1.0}, "b": {"y": 1.0}})

    def test_frontier_chart_groups_by_technology(self):
        from repro.core.frontier import FrontierPoint
        from repro.report import frontier_chart

        points = [
            FrontierPoint(label="baseline@0.18um", window_size=64,
                          mean_ipc=2.0, clock_ps=724.0, tech="0.18um"),
            FrontierPoint(label="baseline@0.35um", window_size=64,
                          mean_ipc=2.0, clock_ps=1484.7, tech="0.35um"),
        ]
        chart = frontier_chart(points)
        assert "0.18um:" in chart
        assert "0.35um:" in chart
        assert "BIPS" in chart
        assert chart.count("baseline") == 2


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["delay", "--tech", "0.18"])
        assert args.tech == 0.18

    def test_delay_command(self, capsys):
        assert main(["delay", "--tech", "0.18"]) == 0
        out = capsys.readouterr().out
        assert "577.9" in out  # Table 2 window logic
        assert "reservation table" in out

    def test_machines_command(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in MACHINES:
            assert name in out

    def test_workloads_command(self, capsys):
        assert main(["workloads", "-n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out
        assert "vortex" in out

    def test_workloads_profile(self, capsys):
        assert main(["workloads", "--profile", "-n", "1000"]) == 0
        assert "dataflow ILP" in capsys.readouterr().out

    def test_workloads_lists_the_zoo(self, capsys):
        assert main(["workloads", "-n", "500"]) == 0
        out = capsys.readouterr().out
        assert "zoo_ilp_wide" in out
        assert "synthetic" in out

    def test_workloads_kind_filter(self, capsys):
        assert main(["workloads", "--kind", "kernel", "-n", "500"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out
        assert "zoo_" not in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "baseline", "li", "-n", "2000"]) == 0
        assert "IPC=" in capsys.readouterr().out

    def test_simulate_verbose(self, capsys):
        assert main(["simulate", "dependence", "li", "-n", "2000", "-v"]) == 0
        out = capsys.readouterr().out
        assert "issued" in out

    def test_experiment_fig13(self, capsys):
        assert main(["experiment", "fig13", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "dependence-based" in out

    def test_experiment_speedup(self, capsys):
        assert main(["experiment", "speedup", "-n", "1500"]) == 0
        assert "clock ratio" in capsys.readouterr().out

    def test_asm_command(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text(
            "main: li r1, 50\nloop: addiu r1, r1, -1\nbgtz r1, loop\nhalt\n"
        )
        assert main(["asm", str(source), "--listing",
                     "--simulate", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "executed" in out
        assert "IPC=" in out

    def test_unknown_machine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "cray-1", "li"])

    def test_simulate_zoo_workload(self, capsys):
        assert main(["simulate", "baseline", "zoo_br_coin",
                     "-n", "1000"]) == 0
        assert "IPC=" in capsys.readouterr().out

    def test_simulate_trace_file(self, tmp_path, capsys):
        from repro.workloads import get_trace
        from repro.workloads.trace_format import save_trace

        path = save_trace(get_trace("li", 500), tmp_path / "ext.jsonl")
        assert main(["simulate", "baseline", "--trace-file", str(path),
                     "-n", "400"]) == 0
        assert "IPC=" in capsys.readouterr().out

    def test_simulate_trace_file_conflicts_with_workload(
        self, tmp_path, capsys
    ):
        path = tmp_path / "x.jsonl"
        path.write_text("")
        assert main(["simulate", "baseline", "li",
                     "--trace-file", str(path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_simulate_needs_a_workload(self, capsys):
        assert main(["simulate", "baseline"]) == 2
        assert "--trace-file" in capsys.readouterr().err

    def test_simulate_unknown_workload_lists_the_registry(self, capsys):
        assert main(["simulate", "baseline", "dhrystone"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "zoo_ilp_wide" in err

    def test_simulate_malformed_trace_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("garbage\n")
        assert main(["simulate", "baseline",
                     "--trace-file", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_campaign_command(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["campaign", "fig13", "-n", "800", "--jobs", "2",
                "--cache-dir", str(cache_dir),
                "--out", str(tmp_path / "result.json"),
                "--metrics", str(tmp_path / "metrics.json")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "dependence-based" in out
        assert "0 cache hits, 14 simulated" in out
        assert (tmp_path / "result.json").exists()
        assert (tmp_path / "metrics.json").exists()
        # Warm rerun: the whole grid from cache, zero simulations.
        assert main(argv) == 0
        assert "14 cache hits, 0 simulated" in capsys.readouterr().out

    def test_campaign_over_the_zoo(self, tmp_path, capsys):
        from repro.workloads import ZOO_NAMES

        cache_dir = tmp_path / "cache"
        argv = ["campaign", "fig13", "-n", "400", "--workloads", "zoo",
                "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        expected = 2 * len(ZOO_NAMES)  # fig13 grid: 2 machines
        out = capsys.readouterr().out
        assert f"0 cache hits, {expected} simulated" in out
        assert "zoo_ilp_serial" in out
        # Warm rerun serves the whole zoo grid from cache.
        assert main(argv) == 0
        assert (f"{expected} cache hits, 0 simulated"
                in capsys.readouterr().out)

    def test_campaign_no_cache(self, tmp_path, capsys):
        assert main(["campaign", "fig13", "-n", "500", "--no-cache",
                     "--cache-dir", str(tmp_path / "unused")]) == 0
        assert "0 cache hits" in capsys.readouterr().out
        assert not (tmp_path / "unused").exists()

    def test_timeline_command(self, capsys):
        assert main(["timeline", "baseline", "li", "-n", "500",
                     "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "IPC=" in out

    def test_frontier_command(self, capsys):
        assert main(["frontier", "-n", "800", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "BIPS" in out
        assert "dependence" in out
        assert "0.18um" in out
        assert "724.0" in out  # baseline clock from the delay layer

    def test_frontier_all_techs_with_cache_and_metrics(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "frontier.json"
        args = ["frontier", "-n", "500", "--tech", "all",
                "--cache-dir", str(tmp_path / "cache"),
                "--metrics", str(metrics)]
        assert main(args) == 0
        out = capsys.readouterr().out
        for tech in ("0.8um", "0.35um", "0.18um"):
            assert tech in out
        cold = json.loads(metrics.read_text())
        assert cold["simulated_cells"] > 0
        # Second run: all cells cached, zero simulations.
        assert main(args) == 0
        warm = json.loads(metrics.read_text())
        assert warm["simulated_cells"] == 0
        assert warm["cache_hits"] == cold["cell_count"]

    def test_delay_machine_breakdown(self, capsys):
        assert main(["delay", "--tech", "0.18",
                     "--machine", "clustered-fifos"]) == 0
        out = capsys.readouterr().out
        assert "clock bound" in out
        assert "critical path" in out
        assert "rename" in out
        assert "FIFO heads" in out
        # Default Table 2 output is untouched by the new flag.
        assert "reservation table" not in out

    def test_compile_command(self, tmp_path, capsys):
        source = tmp_path / "prog.mini"
        source.write_text(
            "func main() { var i; var s; i = 0; s = 0;"
            " while (i < 10) { s = s + i; i = i + 1; } return s; }"
        )
        assert main(["compile", str(source), "--listing",
                     "--simulate", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "main returned 45" in out
        assert "IPC=" in out
        assert "fn_main" in out  # the --listing assembly
