"""Tests for the external JSONL trace format and its ingestion path.

Satellite guarantees: export -> load -> re-export is byte-identical;
every malformed-input class is rejected with a :class:`TraceFormatError`
naming the offending line; the committed golden fixture in
``tests/data/`` keeps the on-disk layout pinned across refactors; and
:func:`register_external_trace` turns a file into a first-class
workload that simulates like any other.
"""

import json
from pathlib import Path

import pytest

from repro.core.machines import baseline_8way
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace
from repro.workloads.registry import (
    WORKLOAD_REGISTRY,
    register_external_trace,
)
from repro.workloads.trace_format import (
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    convert_gem5_records,
    load_trace,
    load_trace_lines,
    save_trace,
    trace_lines,
)

GOLDEN = Path(__file__).parent / "data" / "golden_li64.jsonl"


def valid_lines() -> list[str]:
    """A minimal hand-built valid trace (header + three instructions)."""
    return [
        json.dumps({"format": "repro-trace",
                    "version": TRACE_FORMAT_VERSION,
                    "name": "tiny", "halted": True, "count": 3}),
        json.dumps({"pc": 0, "op": "addu", "srcs": [1, 2], "dest": 3,
                    "mem": None, "taken": False, "next": 1}),
        json.dumps({"pc": 1, "op": "lw", "srcs": [3], "dest": 4,
                    "mem": 256, "taken": False, "next": 2}),
        json.dumps({"pc": 2, "op": "bne", "srcs": [4], "dest": None,
                    "mem": None, "taken": True, "next": 0}),
    ]


class TestRoundTrip:
    def test_export_load_reexport_is_byte_identical(self, tmp_path):
        trace = get_trace("li", 200)
        first = save_trace(trace, tmp_path / "li.jsonl")
        loaded = load_trace(first)
        second = save_trace(loaded, tmp_path / "li2.jsonl")
        assert first.read_bytes() == second.read_bytes()

    def test_loaded_trace_matches_original_field_by_field(self, tmp_path):
        trace = get_trace("compress", 150)
        loaded = load_trace(save_trace(trace, tmp_path / "c.jsonl"))
        assert len(loaded) == len(trace)
        assert loaded.halted == trace.halted
        assert loaded.name == trace.name
        for ours, theirs in zip(trace, loaded):
            assert ours.opcode == theirs.opcode
            assert ours.op_class == theirs.op_class
            assert ours.srcs == theirs.srcs
            assert ours.dest == theirs.dest
            assert ours.mem_addr == theirs.mem_addr
            assert (ours.is_load, ours.is_store, ours.is_branch,
                    ours.is_uncond) == (theirs.is_load, theirs.is_store,
                                        theirs.is_branch, theirs.is_uncond)
            assert ours.taken == theirs.taken
            assert ours.next_pc == theirs.next_pc

    def test_hand_built_lines_load(self):
        trace = load_trace_lines(valid_lines())
        assert len(trace) == 3
        assert trace.halted
        assert trace.name == "tiny"
        assert trace[1].is_load and trace[1].mem_addr == 256
        assert trace[2].is_branch and trace[2].taken


class TestGoldenFixture:
    """The committed fixture pins the on-disk layout."""

    def test_fixture_loads(self):
        trace = load_trace(GOLDEN)
        assert len(trace) == 64
        assert trace.name == "li"
        assert not trace.halted

    def test_fixture_reexports_byte_identically(self, tmp_path):
        loaded = load_trace(GOLDEN)
        out = save_trace(loaded, tmp_path / "golden.jsonl")
        assert out.read_bytes() == GOLDEN.read_bytes()

    def test_fixture_header_is_version_1(self):
        header = json.loads(GOLDEN.read_text().splitlines()[0])
        assert header["format"] == "repro-trace"
        assert header["version"] == 1


class TestMalformedRejection:
    """Every rejection names the offending line."""

    def check(self, lines, match):
        with pytest.raises(TraceFormatError, match=match):
            load_trace_lines(lines)

    def test_empty_file(self):
        self.check([], "line 1: empty file")

    def test_header_not_json(self):
        self.check(["not json"], "line 1: header is not valid JSON")

    def test_header_not_object(self):
        self.check(["[1,2]"], "line 1: header must be a JSON object")

    def test_wrong_format_magic(self):
        lines = valid_lines()
        header = json.loads(lines[0])
        header["format"] = "gem5-o3"
        lines[0] = json.dumps(header)
        self.check(lines, "line 1: not a repro-trace file")

    def test_version_mismatch(self):
        lines = valid_lines()
        header = json.loads(lines[0])
        header["version"] = TRACE_FORMAT_VERSION + 1
        lines[0] = json.dumps(header)
        self.check(lines, "version 2.*not supported")

    def test_bad_count(self):
        lines = valid_lines()
        header = json.loads(lines[0])
        header["count"] = -1
        lines[0] = json.dumps(header)
        self.check(lines, "line 1: count must be a non-negative integer")

    def test_truncated_file_count_mismatch(self):
        self.check(valid_lines()[:-1], "header count=3 but file holds 2")

    def test_record_not_json(self):
        lines = valid_lines()
        lines[2] = '{"pc": 1, "op":'
        self.check(lines, "line 3: not valid JSON")

    def test_missing_field(self):
        lines = valid_lines()
        record = json.loads(lines[1])
        del record["dest"]
        lines[1] = json.dumps(record)
        self.check(lines, "line 2: missing field 'dest'")

    def test_unknown_opcode(self):
        lines = valid_lines()
        record = json.loads(lines[1])
        record["op"] = "vfmadd231ps"
        lines[1] = json.dumps(record)
        self.check(lines, "line 2: unknown opcode 'vfmadd231ps'")

    def test_register_out_of_range(self):
        lines = valid_lines()
        record = json.loads(lines[1])
        record["srcs"] = [64]
        lines[1] = json.dumps(record)
        self.check(lines, "line 2: srcs must be registers in 1..63")

    def test_load_without_mem_address(self):
        lines = valid_lines()
        record = json.loads(lines[2])
        record["mem"] = None
        lines[2] = json.dumps(record)
        self.check(lines, "line 3: lw needs a non-negative mem address")

    def test_alu_with_mem_address(self):
        lines = valid_lines()
        record = json.loads(lines[1])
        record["mem"] = 8
        lines[1] = json.dumps(record)
        self.check(lines, "line 2: addu must not carry a mem address")

    def test_taken_alu_rejected(self):
        lines = valid_lines()
        record = json.loads(lines[1])
        record["taken"] = True
        lines[1] = json.dumps(record)
        self.check(lines, "line 2: non-control addu cannot be taken")

    def test_not_taken_branch_must_fall_through(self):
        lines = valid_lines()
        record = json.loads(lines[3])
        record["taken"] = False
        lines[3] = json.dumps(record)
        self.check(lines, "line 4: a not-taken branch must fall through")

    def test_control_flow_chain_break(self):
        lines = valid_lines()
        record = json.loads(lines[2])
        record["pc"], record["next"] = 7, 8
        lines[2] = json.dumps(record)
        self.check(lines, "line 3: control-flow break")


class TestGem5Converter:
    def test_basic_conversion(self):
        trace = convert_gem5_records([
            {"op_class": "IntAlu", "pc": 0, "srcs": [1], "dest": 2},
            {"op_class": "MemRead", "pc": 1, "srcs": [2], "dest": 3,
             "addr": 64},
            {"op_class": "Branch", "pc": 2, "srcs": [3], "taken": True,
             "next_pc": 0},
        ])
        assert len(trace) == 3
        assert trace[1].is_load and trace[1].mem_addr == 64
        assert trace[2].is_branch and trace[2].taken
        # A converted trace passes the strict validator.
        reloaded = load_trace_lines(list(trace_lines(trace)))
        assert len(reloaded) == 3

    def test_unmapped_class_rejected(self):
        with pytest.raises(TraceFormatError, match="SimdFloatMisc"):
            convert_gem5_records([{"op_class": "SimdFloatMisc", "pc": 0}])


class TestRegisterExternalTrace:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        before = dict(WORKLOAD_REGISTRY)
        yield
        WORKLOAD_REGISTRY.clear()
        WORKLOAD_REGISTRY.update(before)

    def test_registered_trace_is_a_first_class_workload(self, tmp_path):
        path = save_trace(get_trace("li", 300), tmp_path / "mine.jsonl")
        workload = register_external_trace(path)
        assert workload.name == "trace:mine"
        assert workload.kind == "external"
        assert WORKLOAD_REGISTRY["trace:mine"] is workload
        trace = workload.trace(100)
        assert len(trace) == 100
        assert trace.name == "trace:mine"
        stats = simulate(baseline_8way(), trace)
        assert stats.committed == 100

    def test_fingerprint_tracks_file_bytes(self, tmp_path):
        path_a = save_trace(get_trace("li", 50), tmp_path / "a.jsonl")
        path_b = save_trace(get_trace("gcc", 50), tmp_path / "b.jsonl")
        a = register_external_trace(path_a, name="ext-a")
        b = register_external_trace(path_b, name="ext-b")
        assert a.fingerprint() != b.fingerprint()
        assert a.identity()["kind"] == "external"

    def test_malformed_file_rejected_eagerly(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a trace\n")
        with pytest.raises(TraceFormatError):
            register_external_trace(bad)
        assert not any(name.startswith("trace:bad")
                       for name in WORKLOAD_REGISTRY)

    def test_duplicate_name_needs_replace(self, tmp_path):
        path = save_trace(get_trace("li", 40), tmp_path / "dup.jsonl")
        register_external_trace(path)
        with pytest.raises(ValueError, match="already registered"):
            register_external_trace(path)
        register_external_trace(path, replace=True)
