"""Tests for the supporting delay models: register file, CAM rename,
cache access, and the Figure 10 wakeup/select pipelining option."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machines import baseline_8way
from repro.delay import (
    CacheAccessDelayModel,
    CamRenameDelayModel,
    RegisterFileDelayModel,
    RenameDelayModel,
)
from repro.isa import assemble, run_to_trace
from repro.technology import TECH_018, TECH_035, TECH_080, TECHNOLOGIES
from repro.uarch.config import CacheConfig, MachineConfig
from repro.uarch.pipeline import simulate


class TestRegisterFileModel:
    def test_reference_geometry_matches_rename_fit(self):
        # A 32x7 RAM with 12 ports *is* the fitted 4-wide rename table.
        model = RegisterFileDelayModel(TECH_018)
        delay = model.total(32, read_ports=8, write_ports=4)
        # Entry width differs (64b vs 7b), so compare through the
        # internal reference instead: geometry ratios of 1 reproduce
        # the fitted rename total.
        assert model._reference_geometry().bits == 7
        rename = RenameDelayModel(TECH_018).total(4)
        assert delay > rename  # 64-bit entries make wordlines longer

    def test_more_read_ports_is_slower(self):
        model = RegisterFileDelayModel(TECH_018)
        assert model.total(120, 16, 8) > model.total(120, 8, 8)

    def test_more_registers_is_slower(self):
        model = RegisterFileDelayModel(TECH_018)
        assert model.total(240, 16, 8) > model.total(120, 16, 8)

    def test_clustered_copies_are_faster(self):
        # Section 5.4, third advantage: per-cluster register-file
        # copies have fewer read ports, hence faster access.
        for tech in TECHNOLOGIES:
            model = RegisterFileDelayModel(tech)
            shared = model.machine_total(120, issue_width=8)
            per_cluster = model.clustered_total(120, issue_width=8, clusters=2)
            assert per_cluster < shared

    def test_scales_with_technology(self):
        delays = [
            RegisterFileDelayModel(t).machine_total(120, 8) for t in TECHNOLOGIES
        ]
        assert delays[0] > delays[1] > delays[2]

    def test_validation(self):
        model = RegisterFileDelayModel(TECH_018)
        with pytest.raises(ValueError):
            model.total(1, 2, 2)
        with pytest.raises(ValueError):
            model.total(120, 0, 2)
        with pytest.raises(ValueError):
            model.clustered_total(120, 8, 0)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=2, max_value=512),
        st.integers(min_value=1, max_value=32),
    )
    def test_monotone(self, registers, read_ports):
        model = RegisterFileDelayModel(TECH_018)
        base = model.total(registers, read_ports, 4)
        assert model.total(registers + 8, read_ports, 4) >= base
        assert model.total(registers, read_ports + 1, 4) >= base


class TestCamRenameModel:
    def test_comparable_at_design_point(self):
        # Section 4.1.1: "the performance was found to be comparable".
        for tech in TECHNOLOGIES:
            cam = CamRenameDelayModel(tech).total(4, 80)
            ram = RenameDelayModel(tech).total(4)
            assert cam == pytest.approx(ram, rel=1e-6)

    def test_less_scalable_than_ram(self):
        # Section 4.1.1: CAM entries grow with the physical register
        # count, which grows with issue width.
        cam = CamRenameDelayModel(TECH_018)
        ram = RenameDelayModel(TECH_018)
        assert cam.total(8, 256) > 2 * ram.total(8)
        assert cam.total(16, 256) > cam.total(8, 256)

    def test_advantage_sign(self):
        cam = CamRenameDelayModel(TECH_018)
        # Small files: CAM holds its own; big files: RAM wins.
        assert cam.advantage_of_ram(2, 64) > 0  # CAM faster here
        assert cam.advantage_of_ram(8, 256) < 0

    def test_monotone_in_registers(self):
        cam = CamRenameDelayModel(TECH_035)
        delays = [cam.total(8, regs) for regs in (64, 96, 128, 192, 256)]
        assert delays == sorted(delays)

    def test_geometry(self):
        geometry = CamRenameDelayModel(TECH_018).geometry(4, 80)
        assert geometry.window_size == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            CamRenameDelayModel(TECH_018).total(4, 1)
        with pytest.raises(ValueError):
            CamRenameDelayModel(TECH_018).total(0, 80)


class TestCacheAccessModel:
    def test_monotone_in_size(self):
        model = CacheAccessDelayModel(TECH_018)
        delays = [
            model.total(CacheConfig(size_bytes=kb * 1024))
            for kb in (8, 16, 32, 64, 128)
        ]
        assert delays == sorted(delays)

    def test_associativity_costs(self):
        model = CacheAccessDelayModel(TECH_018)
        direct = model.total(CacheConfig(size_bytes=32 * 1024, associativity=2))
        assoc = model.total(CacheConfig(size_bytes=32 * 1024, associativity=4))
        assert assoc > direct

    def test_ports_cost(self):
        model = CacheAccessDelayModel(TECH_018)
        config = CacheConfig()
        assert model.total(config, ports=4) > model.total(config, ports=1)

    def test_scales_with_technology(self):
        config = CacheConfig()
        delays = [CacheAccessDelayModel(t).total(config) for t in TECHNOLOGIES]
        assert delays[0] > delays[1] > delays[2]

    def test_pipelinable(self):
        assert CacheAccessDelayModel(TECH_018).is_pipelinable()

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheAccessDelayModel(TECH_018).total(CacheConfig(), ports=0)

    def test_folded_geometry_is_reasonable(self):
        geometry = CacheAccessDelayModel.data_array_geometry(CacheConfig())
        assert geometry.rows >= 2
        assert geometry.bits >= 1
        # Aspect ratio within the folding bound.
        assert geometry.rows <= 4 * geometry.bits or geometry.bits <= 4 * geometry.rows


class TestWakeupSelectPipelining:
    """Figure 10: the wakeup+select loop is atomic."""

    def serial_trace(self, length=200):
        body = "\n".join("addu r1, r1, r2" for _ in range(length))
        return run_to_trace(assemble(f"li r1, 0\nli r2, 1\n{body}\nhalt\n"))

    def test_two_stage_loop_halves_serial_ipc(self):
        trace = self.serial_trace()
        one = simulate(baseline_8way(wakeup_select_stages=1), trace)
        two = simulate(baseline_8way(wakeup_select_stages=2), trace)
        assert one.ipc == pytest.approx(1.0, abs=0.1)
        assert two.ipc == pytest.approx(0.5, abs=0.06)

    def test_parallel_code_unaffected(self):
        lines = [f"li r{3 + (i % 20)}, {i}" for i in range(300)]
        trace = run_to_trace(assemble("\n".join(lines) + "\nhalt\n"))
        one = simulate(baseline_8way(wakeup_select_stages=1), trace)
        two = simulate(baseline_8way(wakeup_select_stages=2), trace)
        # Independent instructions never wait on wakeup, so the bubble
        # costs (almost) nothing.
        assert two.ipc > 0.95 * one.ipc

    def test_monotone_in_stages(self):
        from repro.workloads import get_trace

        trace = get_trace("gcc", 2_000)
        ipcs = [
            simulate(baseline_8way(wakeup_select_stages=s), trace).ipc
            for s in (1, 2, 3)
        ]
        assert ipcs[0] >= ipcs[1] >= ipcs[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(wakeup_select_stages=0)
