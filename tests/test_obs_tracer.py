"""Tests for the structured pipeline event tracer."""

import pytest

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    clustered_exec_steer_8way,
    dependence_based_8way,
)
from repro.isa import assemble, run_to_trace
from repro.obs import EventKind, EventTracer
from repro.obs.events import LIFECYCLE_ORDER
from repro.uarch.pipeline import PipelineSimulator
from repro.workloads import get_trace

TINY = "li r1, 0\nli r2, 1\naddu r1, r1, r2\nhalt\n"


def traced_run(source_or_trace, config=None, capacity=EventTracer.DEFAULT_CAPACITY):
    if isinstance(source_or_trace, str):
        trace = run_to_trace(assemble(source_or_trace))
    else:
        trace = source_or_trace
    tracer = EventTracer(capacity=capacity)
    simulator = PipelineSimulator(config or baseline_8way(), trace, tracer=tracer)
    stats = simulator.run()
    return tracer, stats


class TestGoldenSequence:
    """A three-instruction program produces the exact event stream."""

    def test_exact_event_sequence(self):
        tracer, _ = traced_run(TINY)
        observed = [(e.cycle, e.kind, e.seq) for e in tracer.events]
        # Fetch cycle 0; front_end_stages=2 delays dispatch to cycle 2
        # (steer + rename + dispatch per instruction); independent lis
        # issue cycle 3; the addu wakes and issues cycle 4; retire in
        # order cycles 5-6.
        assert observed == [
            (0, EventKind.FETCH, 0),
            (0, EventKind.FETCH, 1),
            (0, EventKind.FETCH, 2),
            (2, EventKind.STEER, 0),
            (2, EventKind.RENAME, 0),
            (2, EventKind.DISPATCH, 0),
            (2, EventKind.STEER, 1),
            (2, EventKind.RENAME, 1),
            (2, EventKind.DISPATCH, 1),
            (2, EventKind.STEER, 2),
            (2, EventKind.RENAME, 2),
            (2, EventKind.DISPATCH, 2),
            (3, EventKind.SELECT, 0),
            (3, EventKind.ISSUE, 0),
            (3, EventKind.EXECUTE, 0),
            (3, EventKind.SELECT, 1),
            (3, EventKind.ISSUE, 1),
            (3, EventKind.EXECUTE, 1),
            (4, EventKind.WAKEUP, 2),
            (4, EventKind.SELECT, 2),
            (4, EventKind.ISSUE, 2),
            (4, EventKind.EXECUTE, 2),
            (5, EventKind.COMMIT, 0),
            (5, EventKind.COMMIT, 1),
            (6, EventKind.COMMIT, 2),
        ]

    def test_fetch_carries_opcode(self):
        tracer, _ = traced_run(TINY)
        fetches = [e for e in tracer.events if e.kind is EventKind.FETCH]
        assert [e.detail for e in fetches] == ["li", "li", "addu"]

    def test_rename_records_mapping(self):
        tracer, _ = traced_run(TINY)
        renames = [e for e in tracer.events if e.kind is EventKind.RENAME]
        assert all(e.detail.startswith("r") and "->p" in e.detail
                   for e in renames)

    def test_execute_duration_is_latency(self):
        tracer, _ = traced_run(TINY)
        executes = [e for e in tracer.events if e.kind is EventKind.EXECUTE]
        assert [e.dur for e in executes] == [1, 1, 1]


@pytest.mark.parametrize("factory", [
    baseline_8way,
    dependence_based_8way,
    clustered_dependence_8way,
    clustered_exec_steer_8way,
])
@pytest.mark.parametrize("workload", ["gcc", "li", "compress"])
class TestLifecycleChains:
    """Every committed instruction has a complete, ordered chain."""

    def test_chains_complete_and_monotonic(self, factory, workload):
        tracer, stats = traced_run(get_trace(workload, 1_500), factory())
        chains = tracer.chains()
        assert len(chains) == stats.committed
        for seq, chain in chains.items():
            cycles = {}
            for event in chain:
                # first occurrence per kind
                cycles.setdefault(event.kind, event.cycle)
            missing = [k.value for k in LIFECYCLE_ORDER if k not in cycles]
            assert not missing, f"instruction {seq} missing {missing}"
            milestones = [cycles[k] for k in LIFECYCLE_ORDER]
            assert milestones == sorted(milestones), (
                f"instruction {seq} lifecycle out of order: {milestones}"
            )
            # fetch precedes dispatch (front end), dispatch precedes
            # issue (can't issue the cycle it enters the window), and
            # commit strictly follows issue (1-cycle minimum latency).
            assert cycles[EventKind.FETCH] < cycles[EventKind.DISPATCH]
            assert cycles[EventKind.DISPATCH] < cycles[EventKind.ISSUE]
            assert cycles[EventKind.ISSUE] < cycles[EventKind.COMMIT]

    def test_event_stream_cycle_ordered(self, factory, workload):
        tracer, _ = traced_run(get_trace(workload, 1_500), factory())
        cycles = [e.cycle for e in tracer.events]
        assert cycles == sorted(cycles)


class TestRingBuffer:
    def test_eviction_is_counted(self):
        tracer, stats = traced_run(get_trace("gcc", 1_000), capacity=64)
        assert len(tracer) == 64
        assert tracer.dropped == tracer.emitted - 64
        assert tracer.dropped > 0
        assert stats.committed == 1_000  # tracing never perturbs timing

    def test_unbounded_capacity(self):
        tracer, _ = traced_run(TINY, capacity=None)
        assert tracer.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            EventTracer(capacity=0)

    def test_clear(self):
        tracer, _ = traced_run(TINY)
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0

    def test_events_for(self):
        tracer, _ = traced_run(TINY)
        kinds = [e.kind for e in tracer.events_for(2)]
        assert kinds == [
            EventKind.FETCH, EventKind.STEER, EventKind.RENAME,
            EventKind.DISPATCH, EventKind.WAKEUP, EventKind.SELECT,
            EventKind.ISSUE, EventKind.EXECUTE, EventKind.COMMIT,
        ]


class TestTracingIsPureObservation:
    """Attaching a tracer must not change simulated timing."""

    @pytest.mark.parametrize("factory", [baseline_8way, clustered_dependence_8way])
    def test_identical_stats_with_and_without_tracer(self, factory):
        trace = get_trace("m88ksim", 2_000)
        plain = PipelineSimulator(factory(), trace).run()
        traced = PipelineSimulator(
            factory(), trace, tracer=EventTracer()
        ).run()
        assert plain.to_dict() == traced.to_dict()


class TestSquashEvents:
    def test_mispredicts_emit_squash(self):
        tracer, stats = traced_run(get_trace("gcc", 2_000))
        squashes = [e for e in tracer.events if e.kind is EventKind.SQUASH]
        assert len(squashes) == stats.mispredicts
        assert all(e.detail == "mispredict" for e in squashes)


class TestBypassEvents:
    def test_clustered_machine_emits_bypasses(self):
        tracer, stats = traced_run(
            get_trace("gcc", 2_000), clustered_dependence_8way()
        )
        bypasses = {
            e.seq for e in tracer.events if e.kind is EventKind.BYPASS
        }
        assert stats.inter_cluster_bypasses > 0
        assert len(bypasses) == stats.inter_cluster_bypasses
