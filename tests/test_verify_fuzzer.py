"""Tests for the differential fuzzing engine.

Covers case derivation (determinism, replay), the serial and parallel
execution paths, budget handling, and the end-to-end planted-bug
self-tests -- the proof that the fuzzer detects and minimizes both a
steering bug (caught differentially against the reference) and a
read-port arbiter bug (caught by the fast pipeline's own deadlock
guard); acceptance: each reproducer at most 25 instructions.
"""

import pytest

from repro.verify.fuzzer import (
    FuzzCase,
    build_case_inputs,
    derive_case_seed,
    run_fuzz,
    run_fuzz_case,
)
from repro.verify.selftest import run_port_selftest, run_selftest


def test_case_seeds_are_deterministic_and_distinct():
    seeds = [derive_case_seed(0, case_id) for case_id in range(200)]
    assert seeds == [derive_case_seed(0, case_id) for case_id in range(200)]
    assert len(set(seeds)) == 200
    assert set(seeds).isdisjoint(
        derive_case_seed(1, case_id) for case_id in range(200)
    )


def test_build_case_inputs_is_pure():
    case = FuzzCase(case_id=3, case_seed=derive_case_seed(0, 3))
    first = build_case_inputs(case)
    second = build_case_inputs(case)
    assert first[0] == second[0]  # shape
    assert first[1] == second[1]  # machine config (frozen dataclass)
    assert first[2] == second[2]  # workload kind
    assert first[3] == second[3]  # workload config


def test_fifo_only_cases_sample_fifo_shapes_and_programs():
    for case_id in range(10):
        case = FuzzCase(
            case_id=case_id,
            case_seed=derive_case_seed(5, case_id),
            fifo_only=True,
        )
        shape, _, kind, _ = build_case_inputs(case)
        assert shape in ("dependence", "clustered")
        assert kind == "program"


def test_run_fuzz_case_payload_shape():
    case = FuzzCase(case_id=0, case_seed=derive_case_seed(0, 0))
    payload = run_fuzz_case(case)
    assert payload["case_id"] == 0
    assert payload["kind"] in ("program", "synthetic", "zoo")
    assert payload["failures"] == []
    assert payload["seconds"] > 0


def test_small_campaign_is_clean_and_covers_shapes(tmp_path):
    report = run_fuzz(cases=24, seed=0, jobs=1, repro_dir=tmp_path)
    assert report.ok, [f.failures[0] for f in report.failures]
    profile = report.profile
    assert profile.cases == 24
    assert len(profile.shape_counts) >= 3
    assert set(profile.kind_counts) <= {"program", "synthetic", "zoo"}
    assert "zoo" in profile.kind_counts  # the zoo draw fires at 24 cases
    assert not any(tmp_path.iterdir())  # no reproducers on a clean run


def test_parallel_matches_serial(tmp_path):
    serial = run_fuzz(cases=16, seed=9, jobs=1, repro_dir=tmp_path)
    parallel = run_fuzz(cases=16, seed=9, jobs=2, repro_dir=tmp_path)
    assert serial.ok and parallel.ok
    assert serial.profile.shape_counts == parallel.profile.shape_counts
    assert serial.profile.kind_counts == parallel.profile.kind_counts


def test_case_seed_replay_runs_exactly_one_case(tmp_path):
    target = derive_case_seed(0, 17)
    report = run_fuzz(case_seed=target, repro_dir=tmp_path)
    assert report.profile.cases == 1
    assert report.ok


def test_time_budget_zero_skips_everything(tmp_path):
    report = run_fuzz(
        cases=50, seed=0, jobs=1, time_budget=0.0, repro_dir=tmp_path
    )
    assert report.profile.cases == 0
    assert report.profile.skipped == 50


def test_invalid_arguments_rejected(tmp_path):
    with pytest.raises(ValueError, match="cases"):
        run_fuzz(cases=0, repro_dir=tmp_path)
    with pytest.raises(ValueError, match="jobs"):
        run_fuzz(cases=1, jobs=0, repro_dir=tmp_path)


class TestPlantedBug:
    """End-to-end: the fuzzer must catch and shrink a real bug."""

    @pytest.fixture(scope="class")
    def selftest(self, tmp_path_factory):
        return run_selftest(
            cases=30, seed=1,
            repro_dir=tmp_path_factory.mktemp("repros"),
        )

    def test_bug_is_detected(self, selftest):
        assert selftest.detected
        assert not selftest.report.ok

    def test_reproducer_is_small(self, selftest):
        assert selftest.reproducer is not None
        assert selftest.minimized_instructions is not None
        assert selftest.minimized_instructions <= 25

    def test_reproducer_passes_once_bug_is_gone(self, selftest):
        """run_selftest restores the real steering before returning,
        so its emitted reproducer -- which asserts the differential
        checks *pass* -- must succeed against the healthy simulator."""
        namespace = {}
        exec(compile(
            selftest.reproducer.read_text(encoding="utf-8"),
            str(selftest.reproducer), "exec",
        ), namespace)
        namespace["test_reproducer"]()  # must not raise

    def test_reproducer_records_replay_recipe(self, selftest):
        text = selftest.reproducer.read_text(encoding="utf-8")
        assert "--case-seed" in text
        assert "--fifo-only" in text


class TestPlantedPortArbiterBug:
    """The second planted bug: a leaked read-port budget.

    The reference model does not cover ``ports_limited``, so the
    fuzzer must catch this one without a differential oracle -- the
    pipeline's no-forward-progress guard turns the deadlock into a
    failure string, and the minimizer shrinks it like any other.
    """

    @pytest.fixture(scope="class")
    def selftest(self, tmp_path_factory):
        return run_port_selftest(
            cases=10, seed=1,
            repro_dir=tmp_path_factory.mktemp("port-repros"),
        )

    def test_bug_is_detected(self, selftest):
        assert selftest.detected
        assert not selftest.report.ok
        first = selftest.report.failures[0]
        assert any("forward progress" in f for f in first.failures)

    def test_reproducer_is_small(self, selftest):
        assert selftest.reproducer is not None
        assert selftest.minimized_instructions is not None
        assert selftest.minimized_instructions <= 25

    def test_only_ports_limited_shapes_were_sampled(self, selftest):
        assert set(selftest.report.profile.shape_counts) == {"ports_limited"}

    def test_reproducer_passes_once_bug_is_gone(self, selftest):
        """The registry swap is restored before returning, so the
        emitted reproducer -- which reconstructs the ports_limited
        config, strategy fields included -- must pass against the
        healthy arbiter."""
        namespace = {}
        exec(compile(
            selftest.reproducer.read_text(encoding="utf-8"),
            str(selftest.reproducer), "exec",
        ), namespace)
        namespace["test_reproducer"]()  # must not raise

    def test_registry_is_restored(self):
        from repro.uarch.regfile_model import (
            REGFILE_REGISTRY,
            PortsLimitedRegfile,
        )

        assert REGFILE_REGISTRY["ports_limited"] is PortsLimitedRegfile
