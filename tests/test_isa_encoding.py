"""Tests for binary instruction encoding and the object-file format."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Emulator, assemble
from repro.isa.encoding import (
    MAGIC,
    OPCODE_NUMBERS,
    RECORD_SIZE,
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import Instruction, OPCODES
from repro.workloads import WORKLOAD_NAMES, build_program


class TestInstructionRoundtrip:
    def test_simple(self):
        inst = Instruction(opcode="addu", dest=1, srcs=(2, 3))
        assert decode_instruction(encode_instruction(inst)) == inst

    def test_immediate(self):
        inst = Instruction(opcode="addiu", dest=1, srcs=(2,), imm=-32768)
        clone = decode_instruction(encode_instruction(inst))
        assert clone.imm == -32768

    def test_zero_immediate_is_preserved(self):
        # imm=0 must not decode as "no immediate".
        inst = Instruction(opcode="lw", dest=1, srcs=(2,), imm=0)
        assert decode_instruction(encode_instruction(inst)).imm == 0

    def test_branch_target(self):
        inst = Instruction(opcode="beq", srcs=(1, 2), target=7, label="x")
        clone = decode_instruction(encode_instruction(inst))
        assert clone.target == 7
        assert clone.label == "@7"

    def test_target_zero_preserved(self):
        inst = Instruction(opcode="b", target=0, label="top")
        assert decode_instruction(encode_instruction(inst)).target == 0

    def test_no_dest_encodes(self):
        inst = Instruction(opcode="sw", srcs=(1, 2), imm=4)
        clone = decode_instruction(encode_instruction(inst))
        assert clone.dest is None

    def test_record_size(self):
        assert len(encode_instruction(Instruction(opcode="nop"))) == RECORD_SIZE

    def test_bad_record_size_raises(self):
        with pytest.raises(EncodingError, match="bytes"):
            decode_instruction(b"\x00" * 7)

    def test_unknown_opcode_number_raises(self):
        blob = bytearray(encode_instruction(Instruction(opcode="nop")))
        blob[0] = 0xFE
        with pytest.raises(EncodingError, match="unknown opcode"):
            decode_instruction(bytes(blob))

    def test_oversized_immediate_raises(self):
        inst = Instruction(opcode="li", dest=1, imm=2**40)
        with pytest.raises(EncodingError, match="32 bits"):
            encode_instruction(inst)

    def test_opcode_numbering_is_stable_and_total(self):
        assert set(OPCODE_NUMBERS) == set(OPCODES)
        assert len(set(OPCODE_NUMBERS.values())) == len(OPCODES)

    @given(
        st.sampled_from(sorted(OPCODES)),
        st.integers(min_value=0, max_value=63),
        st.lists(st.integers(min_value=0, max_value=63), max_size=2),
        st.one_of(st.none(), st.integers(min_value=-(2**31), max_value=2**31 - 1)),
    )
    def test_roundtrip_property(self, opcode, dest, srcs, imm):
        inst = Instruction(opcode=opcode, dest=dest, srcs=tuple(srcs), imm=imm)
        clone = decode_instruction(encode_instruction(inst))
        assert clone.opcode == inst.opcode
        assert clone.dest == inst.dest
        assert clone.srcs == inst.srcs
        assert clone.imm == inst.imm


class TestProgramRoundtrip:
    SOURCE = """
        .data
        table: .word 1, 2, 3
        gap:   .space 100
        more:  .word 9
        .text
        main:  la r1, table
        li r2, 3
        li r3, 0
        loop:  lw r4, 0(r1)
        addu r3, r3, r4
        addiu r1, r1, 4
        addiu r2, r2, -1
        bgtz r2, loop
        halt
    """

    def test_roundtrip_preserves_semantics(self):
        program = assemble(self.SOURCE)
        clone = decode_program(encode_program(program))
        original = Emulator(program)
        original.run()
        replay = Emulator(clone)
        replay.run()
        assert replay.int_regs == original.int_regs

    def test_roundtrip_preserves_structure(self):
        program = assemble(self.SOURCE)
        clone = decode_program(encode_program(program))
        assert len(clone) == len(program)
        assert clone.entry_point == program.entry_point
        assert clone.data_image == program.data_image
        for a, b in zip(program.instructions, clone.instructions):
            assert (a.opcode, a.dest, a.srcs, a.imm, a.target) == (
                b.opcode, b.dest, b.srcs, b.imm, b.target
            )

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_all_workloads_roundtrip(self, name):
        program = build_program(name)
        clone = decode_program(encode_program(program))
        assert len(clone) == len(program)
        assert clone.data_image == program.data_image

    def test_sparse_data_segments(self):
        program = assemble(self.SOURCE)
        blob = encode_program(program)
        # The 100-byte .space gap must not be materialised.
        clone = decode_program(blob)
        data_ranges = sorted(clone.data_image)
        assert len(data_ranges) == 16  # 4 words

    def test_bad_magic(self):
        blob = bytearray(encode_program(assemble("halt\n")))
        blob[0:4] = b"ELF\x7f"
        with pytest.raises(EncodingError, match="bad magic"):
            decode_program(bytes(blob))

    def test_truncated_blob(self):
        blob = encode_program(assemble("nop\nnop\nhalt\n"))
        with pytest.raises(EncodingError):
            decode_program(blob[: len(blob) - 3])

    def test_too_short_for_header(self):
        with pytest.raises(EncodingError, match="too short"):
            decode_program(MAGIC)
