"""Property/invariant tests for the simulator core.

Randomised synthetic workloads (seeded, so failures reproduce) driven
through several machine configurations, checking the invariants that
must hold for *any* input: the :meth:`SimStats.validate` audit,
committed <= fetched, IPC bounded by issue width, and bit-exact
reproducibility of identical runs.
"""

import random

import pytest

from repro.core.machines import baseline_8way
from repro.uarch.pipeline import simulate
from repro.workloads import SyntheticConfig, synthetic_trace
from tests.machines import CORE_MACHINES

#: Machines under test: window, FIFO, clustered-FIFO, random-steered.
MACHINE_FACTORIES = CORE_MACHINES

#: Seeds for the randomised trials (one synthetic workload each).
TRIALS = tuple(range(6))


def random_workload(trial: int) -> SyntheticConfig:
    """A randomised-but-reproducible synthetic workload config."""
    rng = random.Random(0xC0FFEE + trial)
    return SyntheticConfig(
        length=rng.randrange(400, 1_600),
        body_size=rng.choice((16, 32, 64, 96)),
        load_fraction=round(rng.uniform(0.0, 0.30), 2),
        store_fraction=round(rng.uniform(0.0, 0.20), 2),
        branch_fraction=round(rng.uniform(0.0, 0.25), 2),
        branch_taken_probability=round(rng.uniform(0.0, 1.0), 2),
        mean_dependence_distance=round(rng.uniform(1.0, 10.0), 1),
        memory_words=rng.choice((256, 1_024, 4_096)),
        seed=rng.randrange(1, 1 << 30),
    )


@pytest.mark.parametrize("machine", sorted(MACHINE_FACTORIES))
@pytest.mark.parametrize("trial", TRIALS)
def test_invariants_hold_for_random_workloads(machine, trial):
    workload = random_workload(trial)
    trace = synthetic_trace(workload)
    config = MACHINE_FACTORIES[machine]()
    stats = simulate(config, trace)

    # The audited invariant set: cycle attribution partitions cycles,
    # the issue histogram is consistent, stall keys are closed.
    stats.validate()

    assert stats.committed == len(trace)
    assert stats.committed <= stats.fetched
    assert stats.cycles > 0
    assert stats.ipc <= config.issue_width
    assert 0.0 <= stats.branch_accuracy <= 1.0
    assert 0.0 <= stats.cache_miss_rate <= 1.0
    assert 0.0 <= stats.inter_cluster_bypass_frequency <= 1.0
    assert stats.mean_occupancy <= config.total_capacity


@pytest.mark.parametrize("machine", sorted(MACHINE_FACTORIES))
def test_same_seed_reproduces_identical_stats(machine):
    workload = random_workload(trial=3)
    config = MACHINE_FACTORIES[machine]()
    first = simulate(config, synthetic_trace(workload))
    second = simulate(config, synthetic_trace(workload))
    assert first.to_dict() == second.to_dict()


def test_different_seeds_differ():
    # Sanity check that the generator actually randomises: two seeds
    # should not produce the same trace behaviour.
    config = baseline_8way()
    a = simulate(config, synthetic_trace(random_workload(0)))
    b = simulate(config, synthetic_trace(random_workload(1)))
    assert a.to_dict() != b.to_dict()


def test_ipc_bounded_even_under_perfect_conditions():
    # Maximum-ILP synthetic workload (no branches, no memory, far
    # dependences): IPC must still respect the issue width.
    workload = SyntheticConfig(
        length=2_000,
        load_fraction=0.0,
        store_fraction=0.0,
        branch_fraction=0.0,
        mean_dependence_distance=32.0,
        seed=7,
    )
    config = baseline_8way()
    stats = simulate(config, synthetic_trace(workload))
    stats.validate()
    assert stats.ipc <= config.issue_width
    assert stats.ipc > 1.0  # and the machine does find parallelism
