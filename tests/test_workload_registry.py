"""Tests for the first-class workload registry and the synthetic zoo.

Satellite guarantees: the registry holds the full roster (paper
kernels first, in figure order), every registered workload traces and
simulates under a small budget (the registry-wide smoke), content
fingerprints are stable-yet-sensitive, and three zoo scenarios carry
golden IPC pins on the baseline and the clustered dependence-based
machine so zoo generator changes trip a reviewed test, exactly like
the paper kernels.
"""

import dataclasses

import pytest

from repro.core.machines import baseline_8way, clustered_dependence_8way
from repro.uarch.pipeline import simulate
from repro.workloads import WORKLOAD_NAMES, get_trace
from repro.workloads.registry import (
    WORKLOAD_KINDS,
    WORKLOAD_REGISTRY,
    Workload,
    canonical_synthetic_content,
    get_workload,
    register_workload,
    workload_identity,
    workload_names,
)
from repro.workloads.zoo import ZOO_NAMES, ZOO_SCENARIOS, zoo_config


class TestRegistryRoster:
    def test_registry_holds_the_full_roster(self):
        # 7 paper kernels + dct/qsort + the zoo: the acceptance floor.
        assert len(WORKLOAD_REGISTRY) >= 19

    def test_paper_kernels_come_first_in_figure_order(self):
        assert workload_names()[: len(WORKLOAD_NAMES)] == WORKLOAD_NAMES

    def test_kind_partition(self):
        kernels = workload_names("kernel")
        synthetic = workload_names("synthetic")
        assert set(WORKLOAD_NAMES) <= set(kernels)
        assert {"dct", "qsort"} <= set(kernels)
        assert set(ZOO_NAMES) == set(synthetic)
        for workload in WORKLOAD_REGISTRY.values():
            assert workload.kind in WORKLOAD_KINDS
            assert workload.description

    def test_zoo_covers_the_three_axes(self):
        assert len(ZOO_NAMES) >= 12
        assert all(name.startswith("zoo_") for name in ZOO_NAMES)
        for axis in ("zoo_ilp_", "zoo_br_", "zoo_mem_"):
            assert sum(1 for name in ZOO_NAMES
                       if name.startswith(axis)) >= 3

    def test_get_workload_names_the_unknowns(self):
        with pytest.raises(KeyError, match="unknown workload 'foo'"):
            get_workload("foo")

    def test_duplicate_registration_rejected(self):
        existing = get_workload("li")
        with pytest.raises(ValueError, match="already registered"):
            register_workload(existing)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            Workload("x", "binary", "", lambda n: None, lambda: b"")


class TestFingerprints:
    def test_fingerprints_are_stable_and_distinct(self):
        prints = {name: w.fingerprint()
                  for name, w in WORKLOAD_REGISTRY.items()}
        assert prints == {name: w.fingerprint()
                          for name, w in WORKLOAD_REGISTRY.items()}
        assert len(set(prints.values())) == len(prints)

    def test_kernel_fingerprint_tracks_source_edits(self, monkeypatch):
        from repro.workloads import li

        original = li.source()
        before = get_workload("li").fingerprint()
        monkeypatch.setattr(li, "source", lambda: original + "\n# x\n")
        assert get_workload("li").fingerprint() != before

    def test_identity_shape(self):
        identity = get_workload("zoo_br_coin").identity()
        assert set(identity) == {"kind", "fingerprint", "version"}
        assert identity["kind"] == "synthetic"
        assert identity["version"] >= 1

    def test_workload_identity_is_total(self):
        fallback = workload_identity("not-registered")
        assert fallback["kind"] == "unregistered"
        assert fallback["fingerprint"] == "not-registered"

    def test_synthetic_content_excludes_length(self):
        config = zoo_config("zoo_ilp_wide")
        longer = dataclasses.replace(config, length=999_999)
        assert (canonical_synthetic_content(config)
                == canonical_synthetic_content(longer))
        reseeded = dataclasses.replace(config, seed=config.seed + 1)
        assert (canonical_synthetic_content(config)
                != canonical_synthetic_content(reseeded))


class TestRegistryWideSmoke:
    """Every registered workload traces and simulates under budget."""

    @pytest.mark.parametrize("name", sorted(WORKLOAD_REGISTRY))
    def test_traces_and_simulates(self, name):
        budget = 400
        trace = get_workload(name).trace(budget)
        assert 0 < len(trace) <= budget
        assert trace.name == name
        stats = simulate(baseline_8way(), trace)
        assert stats.committed == len(trace)
        assert stats.ipc > 0

    def test_trace_cache_spans_access_paths(self):
        # get_trace and Workload.trace share one cache.
        assert get_trace("zoo_tiny_body", 500) is get_workload(
            "zoo_tiny_body").trace(500)


class TestZooScenarios:
    def test_zoo_config_overrides_length_only(self):
        base = ZOO_SCENARIOS["zoo_mem_cold"][1]
        config = zoo_config("zoo_mem_cold", length=123)
        assert config.length == 123
        assert config.seed == base.seed
        assert config.memory_words == base.memory_words

    def test_ilp_axis_orders_dependence_distance(self):
        from repro.analysis.traces import mean_dependence_distance

        distances = [
            mean_dependence_distance(get_trace(name, 2_000))
            for name in ("zoo_ilp_serial", "zoo_ilp_moderate",
                         "zoo_ilp_wide")
        ]
        assert distances == sorted(distances)

    def test_branch_axis_orders_branch_fraction(self):
        sparse = get_trace("zoo_br_sparse", 2_000).branch_fraction()
        dense = get_trace("zoo_br_dense_coin", 2_000).branch_fraction()
        assert sparse < dense


#: Golden IPC pins for zoo scenarios, recorded like the paper-kernel
#: pins in test_golden_regression.py: any drift means the synthetic
#: generator or the pipeline changed, which must be deliberate.
ZOO_LENGTH = 4_000
ZOO_GOLDEN_IPC = {
    ("baseline", "zoo_ilp_wide"): 2.346,
    ("clustered", "zoo_ilp_wide"): 2.138,
    ("baseline", "zoo_br_coin"): 1.505,
    ("clustered", "zoo_br_coin"): 1.364,
    ("baseline", "zoo_mem_hot"): 2.138,
    ("clustered", "zoo_mem_hot"): 1.867,
}
_FACTORIES = {
    "baseline": baseline_8way,
    "clustered": clustered_dependence_8way,
}


@pytest.mark.parametrize("machine,workload", sorted(ZOO_GOLDEN_IPC))
def test_zoo_golden_ipc(machine, workload):
    stats = simulate(
        _FACTORIES[machine](), get_trace(workload, ZOO_LENGTH)
    )
    pinned = ZOO_GOLDEN_IPC[(machine, workload)]
    assert stats.ipc == pytest.approx(pinned, abs=0.02), (
        f"zoo behaviour changed for {machine}/{workload}: "
        f"IPC {stats.ipc:.3f} vs recorded {pinned:.3f}"
    )
