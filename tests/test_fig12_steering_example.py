"""Figure 12: the paper's worked steering example, replayed exactly.

Figure 12 steers a 15-instruction SPEC code segment into four FIFOs,
four instructions per cycle, with four-wide issue, and shows the
resulting issue schedule:

    cycle 1: instructions 0, 1, 3
    cycle 2: instructions 2, 4, 6
    cycle 3: instructions 5, 10
    cycle 4: instructions 7, 11, 12

We assemble the same code segment (the paper's register numbers kept
verbatim), run it through the dependence-based machine configured as
in the figure, and check both the FIFO chain structure the heuristic
builds and the issue schedule.
"""

import pytest

from repro.isa import assemble, run_to_trace
from repro.uarch.config import (
    CacheConfig,
    ClusterConfig,
    MachineConfig,
    PredictorConfig,
    SteeringPolicy,
)
from repro.uarch.pipeline import PipelineSimulator

#: The paper's code segment (Figure 12), one label per branch target.
FIGURE12 = """
main:
    addu  $18, $0, $2          # 0
    addiu $2, $0, -1           # 1
    beq   $18, $2, L2          # 2   (not taken here)
    lw    $4, -32768($28)      # 3
    sllv  $2, $18, $20         # 4
    xor   $16, $2, $19         # 5
    lw    $3, -32676($28)      # 6
    sll   $2, $16, 0x2         # 7
    addu  $2, $2, $23          # 8
    lw    $2, 0($2)            # 9
    sllv  $4, $18, $4          # 10
    addu  $17, $4, $19         # 11
    addiu $3, $3, 1            # 12
    sw    $3, -32676($28)      # 13
    beq   $2, $17, L3          # 14  (taken here)
L2: halt
L3: halt
"""


def figure12_machine() -> MachineConfig:
    """Four FIFOs, steering and issuing four instructions per cycle,
    as stated in the figure's caption."""
    return MachineConfig(
        name="fig12",
        fetch_width=4,
        dispatch_width=4,
        issue_width=4,
        clusters=(ClusterConfig(fifo_count=4, fifo_depth=8, fu_count=4),),
        steering=SteeringPolicy.FIFO_DISPATCH,
        # Weakly not-taken start so the figure's fall-through branch
        # is predicted correctly (the figure assumes no fetch stall),
        # and single-cycle memory (the figure's loads have no misses).
        predictor=PredictorConfig(initial_counter=1),
        cache=CacheConfig(miss_cycles=1),
    )


@pytest.fixture(scope="module")
def simulated():
    trace = run_to_trace(assemble(FIGURE12))
    assert len(trace) == 15
    simulator = PipelineSimulator(figure12_machine(), trace)
    placements: dict[int, tuple[int, int]] = {}
    original = simulator._apply_placement

    def recording(seq, placement):
        placements[seq] = (placement.cluster, placement.fifo)
        original(seq, placement)

    simulator._apply_placement = recording
    simulator.run()
    return simulator, placements


class TestChainStructure:
    """The heuristic must group the figure's dependence chains."""

    @pytest.mark.parametrize(
        "consumer,producer",
        [
            (2, 0),    # beq behind the addu producing $18
            (5, 4),    # xor behind the sllv producing $2
            (7, 5),    # sll behind the xor producing $16
            (8, 7),
            (9, 8),
            (11, 10),  # addu behind the sllv producing $4
            (13, 12),  # sw behind the addiu producing $3
            (14, 9),   # final beq behind the lw producing $2
        ],
    )
    def test_consumer_chains_behind_producer(self, simulated, consumer, producer):
        _sim, placements = simulated
        assert placements[consumer] == placements[producer]

    def test_chain_heads_get_fresh_fifos(self, simulated):
        # 0, 1, 3, 6 start chains in the figure; they must not share a
        # FIFO with one another at steering time (0/1/3 are steered in
        # the same cycle, 6 while 1 and 3 may still be buffered).
        _sim, placements = simulated
        heads = [placements[seq] for seq in (0, 1, 3)]
        assert len(set(heads)) == 3

    def test_single_cluster(self, simulated):
        _sim, placements = simulated
        assert all(cluster == 0 for cluster, _fifo in placements.values())


class TestIssueSchedule:
    """The figure's cycle-by-cycle issue groups, reproduced."""

    EXPECTED_GROUPS = [(0, 1, 3), (2, 4, 6), (5, 10), (7, 11, 12)]

    def test_issue_groups_match_figure(self, simulated):
        simulator, _placements = simulated
        cycles = simulator.issue_cycle
        first = cycles[0]
        for offset, group in enumerate(self.EXPECTED_GROUPS):
            for seq in group:
                assert cycles[seq] == first + offset, (
                    f"inst {seq} issued at relative cycle "
                    f"{cycles[seq] - first}, figure says {offset}"
                )

    def test_no_issue_exceeds_width(self, simulated):
        simulator, _placements = simulated
        per_cycle: dict[int, int] = {}
        for seq in range(15):
            cycle = simulator.issue_cycle[seq]
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= 4

    def test_all_committed(self, simulated):
        simulator, _placements = simulated
        assert simulator.stats.committed == 15
