"""Tests for the instruction set and assembler."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    FP_REG_BASE,
    AssemblerError,
    Instruction,
    OpClass,
    OPCODES,
    assemble,
    reg_name,
)
from repro.isa.assembler import DATA_BASE


class TestInstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Instruction(opcode="frobnicate")

    def test_register_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            Instruction(opcode="addu", dest=64, srcs=(1, 2))

    def test_op_class(self):
        assert Instruction(opcode="lw", dest=1, srcs=(2,), imm=0).op_class is OpClass.LOAD

    def test_str_roundtrips_register_names(self):
        inst = Instruction(opcode="addu", dest=1, srcs=(2, 3))
        assert str(inst) == "addu r1, r2, r3"

    def test_reg_name(self):
        assert reg_name(0) == "r0"
        assert reg_name(31) == "r31"
        assert reg_name(FP_REG_BASE) == "f0"
        assert reg_name(FP_REG_BASE + 5) == "f5"
        with pytest.raises(ValueError):
            reg_name(64)

    def test_every_opcode_has_description(self):
        for name, info in OPCODES.items():
            assert info.name == name
            assert info.description or name in ("nop",)


class TestAssemblerBasics:
    def test_simple_program(self):
        program = assemble("main: li r1, 5\nhalt\n")
        assert len(program) == 2
        assert program.entry_point == 0
        assert program.instructions[0].opcode == "li"
        assert program.instructions[0].imm == 5

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            # full-line comment
            li r1, 1   # trailing comment
            ; alt comment style
            halt
            """
        )
        assert len(program) == 2

    def test_labels_resolve_forward_and_backward(self):
        program = assemble(
            """
            main: b fwd
            back: halt
            fwd:  b back
            """
        )
        assert program.instructions[0].target == 2
        assert program.instructions[2].target == 1

    def test_unknown_label_raises(self):
        with pytest.raises(AssemblerError, match="unknown label"):
            assemble("b nowhere\n")

    def test_unknown_opcode_raises(self):
        with pytest.raises(AssemblerError, match="unknown opcode"):
            assemble("explode r1, r2, r3\n")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("addu r1, r2\n")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble("x: nop\nx: nop\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1\n")

    def test_entry_point_defaults_to_zero_without_main(self):
        program = assemble("nop\nhalt\n")
        assert program.entry_point == 0

    def test_entry_point_is_main(self):
        program = assemble("setup: nop\nmain: halt\n")
        assert program.entry_point == 1


class TestRegisterSyntax:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("r4", 4),
            ("$4", 4),
            ("$t0", 8),
            ("$sp", 29),
            ("$ra", 31),
            ("$zero", 0),
            ("f2", FP_REG_BASE + 2),
            ("$f31", FP_REG_BASE + 31),
        ],
    )
    def test_register_spellings(self, text, expected):
        program = assemble(f"move r1, {text}\nhalt\n")
        assert program.instructions[0].srcs == (expected,)

    def test_bad_register_raises(self):
        with pytest.raises(AssemblerError, match="out of range"):
            assemble("move r1, r99\n")
        with pytest.raises(AssemblerError, match="bad register"):
            assemble("move r1, qq\n")

    def test_bad_immediate_raises(self):
        with pytest.raises(AssemblerError, match="bad immediate"):
            assemble("li r1, banana\n")

    def test_hex_and_negative_immediates(self):
        program = assemble("li r1, 0x10\nli r2, -32768\nhalt\n")
        assert program.instructions[0].imm == 16
        assert program.instructions[1].imm == -32768


class TestMemoryOperands:
    def test_load_shape(self):
        program = assemble("lw r1, 8(r2)\nhalt\n")
        inst = program.instructions[0]
        assert inst.dest == 1
        assert inst.srcs == (2,)
        assert inst.imm == 8

    def test_store_shape(self):
        program = assemble("sw r1, -4(r2)\nhalt\n")
        inst = program.instructions[0]
        assert inst.dest is None
        assert inst.srcs == (1, 2)  # (value, base)
        assert inst.imm == -4

    def test_empty_offset_defaults_to_zero(self):
        program = assemble("lw r1, (r2)\nhalt\n")
        assert program.instructions[0].imm == 0

    def test_bad_address_operand(self):
        with pytest.raises(AssemblerError, match="bad address"):
            assemble("lw r1, r2\n")


class TestDataSection:
    def test_word_directive_little_endian(self):
        program = assemble(
            """
            .data
            x: .word 0x01020304
            .text
            halt
            """
        )
        assert program.data_labels["x"] == DATA_BASE
        assert program.data_image[DATA_BASE] == 0x04
        assert program.data_image[DATA_BASE + 3] == 0x01

    def test_space_reserves_without_init(self):
        program = assemble(
            """
            .data
            buf: .space 16
            after: .word 1
            .text
            halt
            """
        )
        assert program.data_labels["after"] == DATA_BASE + 16
        assert DATA_BASE not in program.data_image

    def test_asciiz(self):
        program = assemble('.data\ns: .asciiz "ab"\n.text\nhalt\n')
        base = program.data_labels["s"]
        assert program.data_image[base] == ord("a")
        assert program.data_image[base + 2] == 0

    def test_align(self):
        program = assemble(
            """
            .data
            a: .byte 1
            .align 2
            b: .word 2
            .text
            halt
            """
        )
        assert program.data_labels["b"] % 4 == 0

    def test_la_pseudo(self):
        program = assemble(
            """
            .data
            spot: .word 7
            .text
            main: la r1, spot
            halt
            """
        )
        assert program.instructions[0].opcode == "li"
        assert program.instructions[0].imm == DATA_BASE

    def test_la_unknown_label(self):
        with pytest.raises(AssemblerError, match="unknown data label"):
            assemble("la r1, nothing\nhalt\n")

    def test_instruction_in_data_section_raises(self):
        with pytest.raises(AssemblerError, match="instruction in .data"):
            assemble(".data\nnop\n")

    def test_directive_in_text_raises(self):
        with pytest.raises(AssemblerError, match="outside .data"):
            assemble(".word 1\n")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".data\n.quadword 1\n")


class TestLinkage:
    def test_jal_writes_link_register(self):
        program = assemble("main: jal sub\nhalt\nsub: jr $ra\n")
        assert program.instructions[0].dest == 31
        assert program.instructions[2].srcs == (31,)

    def test_jalr_writes_link_register(self):
        program = assemble("jalr r5\nhalt\n")
        assert program.instructions[0].dest == 31

    def test_disassemble_contains_labels(self):
        program = assemble("main: nop\nloop: b loop\n")
        listing = program.disassemble()
        assert "main:" in listing
        assert "loop:" in listing


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_immediate_roundtrip(value):
    program = assemble(f"li r1, {value}\nhalt\n")
    assert program.instructions[0].imm == value
