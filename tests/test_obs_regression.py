"""Tests for the perf-regression tracker and the ``repro bench`` gate."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.ledger import Ledger, LedgerEntry
from repro.obs.regression import (
    DEFAULT_THRESHOLD,
    check_all,
    check_frontier_bench,
    check_simulator_bench,
    check_trailing_window,
    format_findings,
    load_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def sim_payload(fast=50_000, reference=20_000, fast_floor=30_000,
                seed_floor=10_000):
    return {
        "kind": "repro-simulator-bench",
        "measured": {
            "baseline_8way/gcc": fast,
            "baseline_8way/gcc (reference)": reference,
        },
        "recorded": {
            "min_rate_floor": fast_floor,
            "seed_min_rate_floor": seed_floor,
        },
    }


class TestSimulatorFloor:
    def test_clears_floors(self):
        assert check_simulator_bench(sim_payload()) == []

    def test_fast_path_below_floor(self):
        findings = check_simulator_bench(sim_payload(fast=10_000))
        (finding,) = findings
        assert finding.source == "floor"
        assert "baseline_8way/gcc" in finding.subject
        assert finding.measured == 10_000.0
        assert finding.reference == 30_000.0

    def test_reference_label_uses_seed_floor(self):
        # 20k clears the 30k fast floor only because "(reference)"
        # labels route to the (lower) seed floor.
        assert check_simulator_bench(sim_payload(reference=20_000)) == []
        findings = check_simulator_bench(sim_payload(reference=5_000))
        (finding,) = findings
        assert "(reference)" in finding.subject
        assert finding.reference == 10_000.0

    def test_missing_floors_are_not_findings(self):
        payload = sim_payload()
        payload["recorded"] = {}
        assert check_simulator_bench(payload) == []


class TestFrontierFloor:
    def test_clears_and_fails(self):
        payload = {"measured": {"warm_speedup": 10.0},
                   "recorded": {"min_warm_speedup_floor": 2.0}}
        assert check_frontier_bench(payload) == []
        payload["measured"]["warm_speedup"] = 1.5
        (finding,) = check_frontier_bench(payload)
        assert finding.subject == "frontier warm-cache speedup"
        assert finding.measured == 1.5

    def test_empty_payload_ok(self):
        assert check_frontier_bench({}) == []


def rated(kind, rate, cells=0, hits=0):
    return LedgerEntry(kind=kind, instructions_per_second=rate,
                       cell_count=cells, cache_hits=hits, run_id="r" * 16)


class TestTrailingWindow:
    def test_throughput_drop_detected(self):
        entries = [rated("simulate", 100.0)] * 4 + [rated("simulate", 10.0)]
        (finding,) = check_trailing_window(entries)
        assert finding.source == "trailing"
        assert "simulate throughput" in finding.subject
        assert finding.measured == 10.0
        assert finding.reference == 100.0

    def test_mild_drop_within_threshold_passes(self):
        entries = [rated("simulate", 100.0), rated("simulate", 60.0)]
        assert check_trailing_window(entries, threshold=0.5) == []

    def test_zero_simulation_entries_excluded(self):
        # A fully warm campaign rerun (inst/s == 0) must not read as a
        # throughput collapse.
        entries = [rated("campaign", 100.0, cells=4, hits=0),
                   rated("campaign", 0.0, cells=4, hits=4)]
        assert check_trailing_window(entries) == []

    def test_hit_rate_drop_detected(self):
        entries = [rated("campaign", 0.0, cells=4, hits=4),
                   rated("campaign", 0.0, cells=4, hits=4),
                   rated("campaign", 0.0, cells=4, hits=0)]
        (finding,) = check_trailing_window(entries)
        assert "cache-hit rate" in finding.subject

    def test_kinds_compared_independently(self):
        entries = [rated("simulate", 100.0), rated("fuzz", 10.0)]
        assert check_trailing_window(entries) == []

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            check_trailing_window([], threshold=0.0)
        with pytest.raises(ValueError, match="threshold"):
            check_trailing_window([], threshold=1.5)


class TestCheckAll:
    def test_committed_bench_records_pass(self):
        # Acceptance: the repo's own BENCH_*.json clear their floors.
        assert check_all(bench_dir=REPO_ROOT) == []

    def test_combines_bench_and_ledger(self, tmp_path):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_simulator.json").write_text(
            json.dumps(sim_payload(fast=10_000)))
        ledger = Ledger(tmp_path / "ledger")
        for entry in ([rated("simulate", 100.0)] * 3 +
                      [rated("simulate", 1.0)]):
            ledger.append(entry)
        findings = check_all(bench_dir=bench_dir, ledger=ledger)
        assert {f.source for f in findings} == {"floor", "trailing"}

    def test_load_bench_unreadable(self, tmp_path):
        assert load_bench(tmp_path / "missing.json") == {}
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        assert load_bench(bad) == {}

    def test_format_findings(self):
        assert "no regressions" in format_findings([])
        findings = check_simulator_bench(sim_payload(fast=10_000))
        assert "REGRESSION" in format_findings(findings)


class TestBenchCli:
    def test_check_passes_on_committed_floors(self, capsys):
        # Acceptance: `repro bench --check` exits 0 against the
        # committed BENCH_*.json records.
        code = main(["bench", "--check", "--bench-dir", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0
        assert "bench regression gate:" in out
        assert "no regressions" in out

    def test_check_fails_when_floor_raised(self, tmp_path, capsys):
        # Acceptance: artificially raising a committed floor must trip
        # the gate with a nonzero exit.
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        for name in ("BENCH_simulator.json", "BENCH_frontier.json"):
            shutil.copy(REPO_ROOT / name, bench_dir / name)
        payload = json.loads(
            (bench_dir / "BENCH_simulator.json").read_text())
        payload["recorded"]["min_rate_floor"] = 10 ** 9
        (bench_dir / "BENCH_simulator.json").write_text(json.dumps(payload))

        code = main(["bench", "--check", "--bench-dir", str(bench_dir)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_without_check_reports_but_passes(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_simulator.json").write_text(
            json.dumps(sim_payload(fast=1)))
        code = main(["bench", "--bench-dir", str(bench_dir)])
        assert code == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_bad_threshold_is_usage_error(self, tmp_path):
        code = main(["bench", "--check", "--bench-dir", str(tmp_path),
                     "--threshold", "7"])
        assert code == 2

    def test_trailing_window_via_ledger_dir(self, tmp_path, capsys):
        ledger = Ledger(tmp_path / "ledger")
        for entry in ([rated("simulate", 100.0)] * 3 +
                      [rated("simulate", 1.0)]):
            ledger.append(entry)
        code = main(["bench", "--check", "--bench-dir", str(tmp_path),
                     "--ledger-dir", str(tmp_path / "ledger")])
        assert code == 1
        assert "trailing" in capsys.readouterr().out

    def test_default_threshold_applied(self, tmp_path):
        assert 0.0 < DEFAULT_THRESHOLD <= 1.0
