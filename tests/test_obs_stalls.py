"""Tests for stall attribution and the SimStats invariants."""

import pytest

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    clustered_exec_steer_8way,
    clustered_random_8way,
    clustered_windows_8way,
    dependence_based_8way,
)
from repro.uarch.pipeline import simulate
from repro.uarch.stats import SimStats, StallCause
from repro.workloads import WORKLOAD_NAMES, get_trace

MACHINE_FACTORIES = (
    baseline_8way,
    dependence_based_8way,
    clustered_dependence_8way,
    clustered_windows_8way,
    clustered_exec_steer_8way,
    clustered_random_8way,
)


class TestCycleAttribution:
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_breakdown_sums_to_cycles_all_workloads(self, workload):
        """Acceptance: per-cause stall breakdowns sum exactly to total
        cycles on all seven SPEC'95 workloads."""
        for factory in MACHINE_FACTORIES:
            stats = simulate(factory(), get_trace(workload, 2_000))
            attributed = stats.active_cycles + sum(stats.stall_cycles.values())
            assert attributed == stats.cycles, (
                f"{factory.__name__} on {workload}: "
                f"{attributed} != {stats.cycles}"
            )
            stats.validate()

    def test_causes_are_enum_members(self):
        stats = simulate(clustered_dependence_8way(), get_trace("gcc", 2_000))
        assert all(isinstance(c, StallCause) for c in stats.stall_cycles)
        assert all(isinstance(c, StallCause) for c in stats.dispatch_stalls)

    def test_fifo_machine_attributes_no_fifo(self):
        stats = simulate(clustered_dependence_8way(), get_trace("li", 2_000))
        assert stats.stall_cycles.get(StallCause.NO_FIFO, 0) > 0

    def test_tiny_window_attributes_backpressure(self):
        config = baseline_8way(window_size=4)
        stats = simulate(config, get_trace("compress", 2_000))
        backpressure = (
            stats.stall_cycles.get(StallCause.WINDOW_FULL, 0)
            + stats.stall_cycles.get(StallCause.FU_CONTENTION, 0)
            + stats.stall_cycles.get(StallCause.CACHE_PORT, 0)
            + stats.stall_cycles.get(StallCause.LOAD_STORE_ORDER, 0)
        )
        assert backpressure > 0

    def test_drain_cycles_present(self):
        stats = simulate(baseline_8way(), get_trace("gcc", 1_000))
        assert stats.stall_cycles.get(StallCause.DRAIN, 0) >= 1

    def test_breakdown_rows_cover_cycles(self):
        stats = simulate(baseline_8way(), get_trace("perl", 1_000))
        rows = stats.stall_breakdown()
        assert rows[0][0] == "active"
        assert sum(cycles for _, cycles, _ in rows) == stats.cycles


class TestNoteStallClosedEnum:
    def test_string_values_coerce(self):
        stats = SimStats()
        stats.note_stall("window_full")
        assert stats.dispatch_stalls == {StallCause.WINDOW_FULL: 1}

    def test_unknown_cause_rejected(self):
        stats = SimStats()
        with pytest.raises(ValueError):
            stats.note_stall("window-is-full")

    def test_attribute_cycle_rejects_unknown(self):
        stats = SimStats()
        with pytest.raises(ValueError):
            stats.attribute_cycle("bogus")


class TestValidate:
    def _completed_run(self):
        return simulate(baseline_8way(), get_trace("li", 1_000))

    def test_real_run_validates(self):
        assert self._completed_run().validate() is not None

    def test_committed_exceeding_fetched_rejected(self):
        stats = self._completed_run()
        stats.fetched = stats.committed - 1
        with pytest.raises(ValueError, match="exceeds fetched"):
            stats.validate()

    def test_histogram_mismatch_rejected(self):
        stats = self._completed_run()
        stats.issue_histogram[4] = stats.issue_histogram.get(4, 0) + 1
        with pytest.raises(ValueError, match="issue histogram"):
            stats.validate()

    def test_attribution_gap_rejected(self):
        stats = self._completed_run()
        stats.active_cycles -= 1
        with pytest.raises(ValueError, match="cycle attribution"):
            stats.validate()

    def test_non_enum_key_rejected(self):
        stats = self._completed_run()
        stats.stall_cycles = dict(stats.stall_cycles)
        # sneak a raw string past note_stall's coercion
        cause = stats.stall_cycles.pop(StallCause.FETCH_STARVED, 0)
        stats.stall_cycles[object()] = cause
        with pytest.raises(ValueError):
            stats.validate()


class TestMerge:
    def test_merged_counters_add_and_validate(self):
        config = baseline_8way()
        a = simulate(config, get_trace("li", 1_000))
        b = simulate(config, get_trace("gcc", 1_000))
        merged = a.merge(b)
        assert merged.committed == a.committed + b.committed
        assert merged.cycles == a.cycles + b.cycles
        assert merged.workload == "li+gcc"
        merged.validate()

    def test_merge_accumulates_dicts(self):
        a = SimStats(machine="m")
        b = SimStats(machine="m")
        a.note_stall(StallCause.WINDOW_FULL)
        b.note_stall(StallCause.WINDOW_FULL)
        b.note_stall(StallCause.NO_FIFO)
        merged = a.merge(b)
        assert merged.dispatch_stalls == {
            StallCause.WINDOW_FULL: 2,
            StallCause.NO_FIFO: 1,
        }

    def test_cross_machine_merge_rejected(self):
        with pytest.raises(ValueError, match="different machines"):
            SimStats(machine="a").merge(SimStats(machine="b"))

    def test_suite_aggregation_path(self):
        """Multi-workload tables aggregate through merge, one path."""
        config = dependence_based_8way()
        runs = [
            simulate(config, get_trace(w, 500)) for w in WORKLOAD_NAMES
        ]
        total = runs[0]
        for stats in runs[1:]:
            total = total.merge(stats)
        total.validate()
        assert total.committed == sum(r.committed for r in runs)
        assert total.workload == "+".join(WORKLOAD_NAMES)


class TestSerialisationRoundTrip:
    def test_round_trip_preserves_everything(self):
        stats = simulate(clustered_dependence_8way(), get_trace("vortex", 1_000))
        clone = SimStats.from_dict(stats.to_dict())
        assert clone == stats
        clone.validate()

    def test_wire_format_uses_cause_values(self):
        stats = SimStats()
        stats.attribute_cycle(StallCause.NO_FIFO)
        payload = stats.to_dict()
        assert payload["stall_cycles"] == {"no_fifo": 1}

    def test_from_dict_rejects_unknown_cause(self):
        with pytest.raises(ValueError):
            SimStats.from_dict({"stall_cycles": {"made_up": 3}})

    def test_json_compatible(self):
        import json

        stats = simulate(baseline_8way(), get_trace("go", 500))
        json.loads(json.dumps(stats.to_dict()))
