"""Tests for heartbeats and the live ``--progress`` meter."""

import io

import pytest

from repro.obs.progress import Heartbeat, ProgressMeter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TtyStream(io.StringIO):
    def isatty(self):
        return True


def meter(total=10, stream=None, unit="cells"):
    clock = FakeClock()
    return ProgressMeter(total, stream=stream, unit=unit, clock=clock), clock


class TestHeartbeat:
    def test_defaults(self):
        beat = Heartbeat("baseline/gcc")
        assert beat.source == "simulated"
        assert beat.seconds == 0.0
        assert beat.instructions == 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Heartbeat("x").label = "y"


class TestAccounting:
    def test_counts_by_source(self):
        m, _ = meter()
        m.post(Heartbeat("a", source="cache"))
        m.post(Heartbeat("b", source="simulated", instructions=1000))
        m.post(Heartbeat("c", source="fail"))
        assert m.done == 3
        assert m.hits == 1
        assert m.failures == 1
        assert m.instructions == 1000
        assert m.hit_rate == pytest.approx(1 / 3)

    def test_rates_with_injected_clock(self):
        m, clock = meter()
        clock.now = 2.0
        m.post(Heartbeat("a", instructions=500))
        assert m.elapsed == 2.0
        assert m.instructions_per_second == 250.0

    def test_zero_division_guards(self):
        m, _ = meter()
        assert m.hit_rate == 0.0
        assert m.instructions_per_second == 0.0

    def test_negative_total_raises(self):
        with pytest.raises(ValueError, match="total"):
            ProgressMeter(-1)


class TestEta:
    def test_none_without_total_or_progress(self):
        m, _ = meter(total=None)
        m.post(Heartbeat("a"))
        assert m.eta_seconds is None
        m2, _ = meter(total=4)
        assert m2.eta_seconds is None

    def test_extrapolates_from_progress(self):
        m, clock = meter(total=4)
        clock.now = 2.0
        m.post(Heartbeat("a"))
        m.post(Heartbeat("b"))
        assert m.eta_seconds == pytest.approx(2.0)

    def test_zero_when_complete(self):
        m, clock = meter(total=1)
        clock.now = 1.0
        m.post(Heartbeat("a"))
        assert m.eta_seconds == 0.0


class TestLine:
    def test_contents(self):
        m, clock = meter(total=40)
        for i in range(12):
            source = "cache" if i < 4 else "simulated"
            m.post(Heartbeat(f"c{i}", source=source, instructions=10_000))
        clock.now = 1.0
        line = m.line()
        assert line.startswith("12/40 cells")
        assert "33% hits" in line
        assert "120,000 inst/s" in line
        assert "ETA" in line
        assert "failed" not in line

    def test_failures_and_unknown_total(self):
        m, _ = meter(total=None, unit="cases")
        m.post(Heartbeat("a", source="fail"))
        line = m.line()
        assert line.startswith("1 cases")
        assert "1 failed" in line
        assert "ETA" not in line


class TestRendering:
    def test_non_tty_silent_until_close(self):
        stream = io.StringIO()
        m, clock = meter(total=2, stream=stream)
        m.post(Heartbeat("a"))
        assert stream.getvalue() == ""
        clock.now = 0.5
        m.close()
        output = stream.getvalue()
        assert output.count("\n") == 1
        assert "in 0.50s" in output
        m.close()  # idempotent: still exactly one line
        assert stream.getvalue() == output

    def test_tty_rewrites_in_place(self):
        stream = TtyStream()
        m, _ = meter(total=2, stream=stream)
        m.post(Heartbeat("a"))
        m.post(Heartbeat("b"))
        output = stream.getvalue()
        assert output.count("\r\x1b[2K") == 2
        assert "1/2 cells" in output
        assert "2/2 cells" in output

    def test_streamless_meter_keeps_accounting(self):
        m, _ = meter(stream=None)
        m.post(Heartbeat("a"))
        m.close()
        assert m.done == 1
