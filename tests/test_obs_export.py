"""Smoke tests for the trace/metrics exporters and the ``repro trace`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core.machines import baseline_8way, clustered_dependence_8way
from repro.obs import (
    EventKind,
    EventTracer,
    chrome_trace,
    metrics_dict,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.export import event_chains, validate_metrics
from repro.uarch.pipeline import PipelineSimulator
from repro.workloads import get_trace

LIFECYCLE = ("frontend", "window", "commit-wait")


def traced_stats(config=None, workload="gcc", length=1_000):
    tracer = EventTracer()
    simulator = PipelineSimulator(
        config or baseline_8way(), get_trace(workload, length), tracer=tracer
    )
    stats = simulator.run()
    return tracer, stats


class TestTraceCliSmoke:
    """Tier-1 acceptance: ``repro trace`` on 200 synthetic instructions
    yields schema-valid Chrome JSON with complete, ordered chains."""

    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "trace.json"
        exit_code = main(
            ["trace", "synthetic", "-n", "200", "--out", str(out)]
        )
        assert exit_code == 0
        return json.loads(out.read_text(encoding="utf-8"))

    def test_schema_valid(self, payload):
        validate_chrome_trace(payload)
        assert payload["traceEvents"]

    def test_embeds_validated_stats(self, payload):
        stats = payload["metadata"]["repro-stats"]
        assert stats["committed"] == 200

    def test_chains_complete_and_ordered(self, payload):
        """Every committed instruction has frontend -> window ->
        commit-wait spans in non-decreasing timestamp order."""
        spans: dict[int, dict[str, int]] = {}
        for event in payload["traceEvents"]:
            if event["ph"] == "X" and event["name"] in LIFECYCLE:
                spans.setdefault(event["tid"], {})[event["name"]] = event["ts"]
        committed = payload["metadata"]["repro-stats"]["committed"]
        assert len(spans) == committed
        for seq, stages in spans.items():
            assert set(stages) == set(LIFECYCLE), f"instruction {seq}"
            starts = [stages[name] for name in LIFECYCLE]
            assert starts == sorted(starts), f"instruction {seq}: {starts}"

    def test_events_sorted_by_timestamp(self, payload):
        timed = [e["ts"] for e in payload["traceEvents"] if e["ph"] != "M"]
        assert timed == sorted(timed)


class TestChromeTraceStructure:
    def test_instants_and_spans(self):
        tracer, stats = traced_stats()
        payload = chrome_trace(tracer.events, stats=stats)
        validate_chrome_trace(payload)
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"X", "i", "M"}

    def test_cluster_becomes_pid(self):
        tracer, _ = traced_stats(clustered_dependence_8way())
        payload = chrome_trace(tracer.events)
        pids = {
            e["pid"] for e in payload["traceEvents"] if e["ph"] != "M"
        }
        assert pids == {0, 1}
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["name"] == "process_name"
        }
        assert names == {"cluster 0", "cluster 1"}

    def test_thread_names_carry_opcode(self):
        tracer, _ = traced_stats(length=200)
        payload = chrome_trace(tracer.events)
        thread_names = [
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["name"] == "thread_name"
        ]
        assert thread_names
        assert all(name.startswith("i") for name in thread_names)

    def test_write_round_trips_through_json(self, tmp_path):
        tracer, stats = traced_stats(length=300)
        path = tmp_path / "out.json"
        payload = write_chrome_trace(path, tracer.events, stats=stats)
        assert json.loads(path.read_text(encoding="utf-8")) == json.loads(
            json.dumps(payload)
        )

    def test_event_chains_groups_by_seq(self):
        tracer, stats = traced_stats(length=200)
        chains = event_chains(tracer.events)
        commits = [
            events[-1].kind is EventKind.COMMIT
            for events in chains.values()
            if any(e.kind is EventKind.COMMIT for e in events)
        ]
        assert len(commits) == stats.committed


class TestChromeTraceValidator:
    def _minimal(self):
        return {
            "traceEvents": [
                {"name": "x", "ph": "i", "s": "t", "ts": 0,
                 "pid": 0, "tid": 0, "args": {}},
            ],
        }

    def test_accepts_minimal(self):
        validate_chrome_trace(self._minimal())

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_missing_required_key(self):
        payload = self._minimal()
        del payload["traceEvents"][0]["pid"]
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace(payload)

    def test_rejects_bad_phase(self):
        payload = self._minimal()
        payload["traceEvents"][0]["ph"] = "Z"
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(payload)

    def test_rejects_negative_timestamp(self):
        payload = self._minimal()
        payload["traceEvents"][0]["ts"] = -4
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(payload)

    def test_rejects_span_without_duration(self):
        payload = self._minimal()
        payload["traceEvents"][0]["ph"] = "X"
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(payload)

    def test_rejects_bad_instant_scope(self):
        payload = self._minimal()
        payload["traceEvents"][0]["s"] = "q"
        with pytest.raises(ValueError, match="scope"):
            validate_chrome_trace(payload)


class TestMetricsExport:
    def test_metrics_payload_validates(self):
        _, stats = traced_stats(length=500)
        payload = metrics_dict(stats)
        validate_metrics(payload)
        assert payload["derived"]["ipc"] == stats.ipc

    def test_write_metrics_json(self, tmp_path):
        _, stats = traced_stats(length=500)
        path = tmp_path / "metrics.json"
        write_metrics_json(path, stats)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        validate_metrics(loaded)
        assert loaded["stats"]["committed"] == stats.committed

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="repro-metrics"):
            validate_metrics({"kind": "something-else"})

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="format"):
            validate_metrics({"kind": "repro-metrics", "format_version": 99})

    def test_stats_cli_writes_metrics(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        exit_code = main(
            ["stats", "baseline", "synthetic", "-n", "300",
             "--breakdown", "--json", str(out)]
        )
        assert exit_code == 0
        validate_metrics(json.loads(out.read_text(encoding="utf-8")))
        printed = capsys.readouterr().out
        assert "active" in printed and "attributed" in printed


class TestSnapshotExporters:
    """Degenerate-input hardening for the snapshot exporters."""

    def test_empty_registry_prometheus_text(self):
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        assert prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_empty_registry_json_write(self, tmp_path):
        from repro.obs.export import write_snapshot_json
        from repro.obs.metrics import MetricsRegistry

        path = tmp_path / "snapshot.json"
        payload = write_snapshot_json(path, MetricsRegistry().snapshot())
        assert payload["metrics"] == {}
        assert json.loads(path.read_text()) == payload

    def test_empty_trace_chrome_trace(self):
        payload = chrome_trace([])
        validate_chrome_trace(payload)
        assert payload["traceEvents"] == []

    def test_unicode_workload_labels_round_trip(self, tmp_path):
        from repro.obs.export import prometheus_text, write_snapshot_json
        from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

        registry = MetricsRegistry()
        registry.counter("campaign_cells_total").inc(
            2, {"workload": "göç-程序"})
        snapshot = registry.snapshot()

        text = prometheus_text(snapshot)
        assert 'workload="göç-程序"' in text

        path = tmp_path / "snapshot.json"
        write_snapshot_json(path, snapshot)
        raw = path.read_text(encoding="utf-8")
        assert "göç-程序" in raw  # ensure_ascii=False: no \u escapes
        clone = MetricsSnapshot.from_dict(json.loads(raw))
        assert clone == snapshot

    def test_label_values_escaped(self):
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("c").inc(1, {"name": 'a"b\\c\nd'})
        assert '{name="a\\"b\\\\c\\nd"}' in prometheus_text(registry.snapshot())

    def test_histogram_exposition_is_cumulative(self):
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        text = prometheus_text(registry.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_validate_rejects_foreign_payload(self):
        from repro.obs.export import validate_snapshot_payload

        with pytest.raises(ValueError):
            validate_snapshot_payload({"kind": "not-a-snapshot"})


class TestMergeOrderByteIdentical:
    """Satellite acceptance: both exporters emit byte-identical output
    for either merge order of two worker snapshots."""

    def worker_snapshots(self):
        from repro.obs.metrics import MetricsRegistry

        snapshots = []
        for index, seconds in enumerate((0.125, 0.375)):
            registry = MetricsRegistry()
            registry.counter("campaign_cells_total").inc(
                1, {"source": "simulated"})
            registry.counter("sim_wall_seconds_total").inc(seconds)
            registry.gauge("sim_ipc").set(1.0 + index)
            registry.histogram(
                "campaign_cell_seconds", buckets=(0.25,)).observe(seconds)
            snapshots.append(registry.snapshot())
        return snapshots

    def test_prometheus_text_order_independent(self):
        from repro.obs.export import prometheus_text
        from repro.obs.metrics import MetricsSnapshot

        a, b = self.worker_snapshots()
        forward = prometheus_text(MetricsSnapshot.merge_all([a, b]))
        reverse = prometheus_text(MetricsSnapshot.merge_all([b, a]))
        assert forward == reverse
        assert 'campaign_cells_total{source="simulated"} 2' in forward

    def test_json_write_order_independent(self, tmp_path):
        from repro.obs.export import write_snapshot_json
        from repro.obs.metrics import MetricsSnapshot

        a, b = self.worker_snapshots()
        write_snapshot_json(tmp_path / "ab.json",
                            MetricsSnapshot.merge_all([a, b]))
        write_snapshot_json(tmp_path / "ba.json",
                            MetricsSnapshot.merge_all([b, a]))
        assert ((tmp_path / "ab.json").read_bytes()
                == (tmp_path / "ba.json").read_bytes())
