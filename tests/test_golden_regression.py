"""Golden regression pins.

These tests pin exact simulator outputs for fixed (machine, workload,
length) triples.  The simulator is deterministic, so any change to
these values means pipeline behaviour changed -- which must be a
deliberate, reviewed decision (update the constants *and* re-record
EXPERIMENTS.md).  Tolerances are tight but non-zero so that pure
refactors (e.g. float vs int cycle bookkeeping) do not trip them.
"""

import pytest

from repro.core.machines import baseline_8way
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace
from tests.machines import ALL_MACHINES

LENGTH = 4_000

#: (machine factory, workload) -> recorded IPC at LENGTH instructions.
#: Every registered machine shape is pinned on at least one workload,
#: so steering/selection changes in any variant trip a golden test.
GOLDEN_IPC = {
    ("baseline", "compress"): 2.384,
    ("baseline", "gcc"): 3.306,
    ("baseline", "li"): 1.951,
    ("baseline", "m88ksim"): 3.711,
    ("dependence", "compress"): 2.247,
    ("dependence", "li"): 1.951,
    ("dependence", "m88ksim"): 3.640,
    ("clustered", "m88ksim"): 3.215,
    ("clustered_windows", "compress"): 2.104,
    ("clustered_windows", "m88ksim"): 3.123,
    ("exec_steer", "compress"): 2.381,
    ("exec_steer", "m88ksim"): 3.493,
    ("modulo", "compress"): 1.638,
    ("modulo", "m88ksim"): 2.392,
    ("least_loaded", "compress"): 1.641,
    ("least_loaded", "m88ksim"): 2.414,
    ("random", "m88ksim"): 2.471,
    ("load_tracking", "compress"): 2.148,
    ("load_tracking", "gcc"): 3.058,
    ("load_tracking", "m88ksim"): 3.546,
    ("ports_limited", "compress"): 1.857,
    ("ports_limited", "gcc"): 2.554,
    ("ports_limited", "m88ksim"): 2.825,
}

FACTORIES = ALL_MACHINES


@pytest.mark.parametrize("machine,workload", sorted(GOLDEN_IPC))
def test_golden_ipc(machine, workload):
    stats = simulate(FACTORIES[machine](), get_trace(workload, LENGTH))
    assert stats.ipc == pytest.approx(GOLDEN_IPC[(machine, workload)], abs=0.02), (
        f"pipeline behaviour changed for {machine}/{workload}: "
        f"IPC {stats.ipc:.3f} vs recorded {GOLDEN_IPC[(machine, workload)]:.3f}"
    )


def test_golden_branch_accuracy():
    stats = simulate(baseline_8way(), get_trace("gcc", LENGTH))
    assert stats.branch_accuracy == pytest.approx(0.87, abs=0.04)


def test_golden_cache_miss_rate():
    stats = simulate(baseline_8way(), get_trace("compress", LENGTH))
    assert 0.05 < stats.cache_miss_rate < 0.45


def test_golden_occupancy_sane():
    stats = simulate(baseline_8way(), get_trace("go", LENGTH))
    # A 64-entry window on a high-ILP workload runs partly full.
    assert 2.0 < stats.mean_occupancy < 64.0
