"""Golden regression pins.

These tests pin exact simulator outputs for fixed (machine, workload,
length) triples.  The simulator is deterministic, so any change to
these values means pipeline behaviour changed -- which must be a
deliberate, reviewed decision (update the constants *and* re-record
EXPERIMENTS.md).  Tolerances are tight but non-zero so that pure
refactors (e.g. float vs int cycle bookkeeping) do not trip them.
"""

import pytest

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    clustered_random_8way,
    dependence_based_8way,
)
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace

LENGTH = 4_000

#: (machine factory, workload) -> recorded IPC at LENGTH instructions.
GOLDEN_IPC = {
    ("baseline", "compress"): 2.384,
    ("baseline", "gcc"): 3.306,
    ("baseline", "li"): 1.951,
    ("baseline", "m88ksim"): 3.711,
    ("dependence", "compress"): 2.247,
    ("dependence", "li"): 1.951,
    ("clustered", "m88ksim"): 3.215,
    ("random", "m88ksim"): 2.471,
}

FACTORIES = {
    "baseline": baseline_8way,
    "dependence": dependence_based_8way,
    "clustered": clustered_dependence_8way,
    "random": clustered_random_8way,
}


@pytest.mark.parametrize("machine,workload", sorted(GOLDEN_IPC))
def test_golden_ipc(machine, workload):
    stats = simulate(FACTORIES[machine](), get_trace(workload, LENGTH))
    assert stats.ipc == pytest.approx(GOLDEN_IPC[(machine, workload)], abs=0.02), (
        f"pipeline behaviour changed for {machine}/{workload}: "
        f"IPC {stats.ipc:.3f} vs recorded {GOLDEN_IPC[(machine, workload)]:.3f}"
    )


def test_golden_branch_accuracy():
    stats = simulate(baseline_8way(), get_trace("gcc", LENGTH))
    assert stats.branch_accuracy == pytest.approx(0.87, abs=0.04)


def test_golden_cache_miss_rate():
    stats = simulate(baseline_8way(), get_trace("compress", LENGTH))
    assert 0.05 < stats.cache_miss_rate < 0.45


def test_golden_occupancy_sane():
    stats = simulate(baseline_8way(), get_trace("go", LENGTH))
    # A 64-entry window on a high-ILP workload runs partly full.
    assert 2.0 < stats.mean_occupancy < 64.0
