"""Property tests for the per-config pipeline compiler.

``repro.uarch.compile`` turns one frozen :class:`MachineConfig` into
an ``exec``-compiled flat run function.  These tests pin the parts
the equivalence matrix (tests/test_fast_reference_equivalence.py)
does not: the compile cache's key sensitivity and trust-nothing
loads (mirroring the campaign ``ResultCache`` audits in
tests/test_campaign.py), the graceful-fallback contract of
``simulate(..., mode="compiled")``, the planted miscompilation knobs
the fuzzer self-test relies on, and -- satellite: the
no-forward-progress guard must fire *inside* compiled step functions,
with the interpreter's exact message shapes.
"""

import pytest

from repro.core.machines import MACHINE_REGISTRY, baseline_8way, ports_limited_8way
from repro.uarch import compile as compile_mod
from repro.uarch.compile import (
    COMPILE_VERSION,
    compile_cache_key,
    compile_cache_stats,
    compiled_runner,
    generate_source,
    run_compiled,
    supports_compile,
)
from repro.uarch.pipeline import SIMULATE_MODES, PipelineSimulator, simulate
from repro.workloads import get_trace

LENGTH = 400


@pytest.fixture(autouse=True)
def fresh_compile_cache():
    """Every test starts from (and leaves behind) an empty cache."""
    compile_mod.clear_compile_cache()
    yield
    compile_mod.clear_compile_cache()


class TestSupportsCompile:
    """The supported family is exactly the single-window machines."""

    def test_registry_coverage(self):
        supported = {
            name
            for name, factory in MACHINE_REGISTRY.items()
            if supports_compile(factory())
        }
        assert supported == {"baseline", "ports_limited"}

    def test_generate_source_rejects_unsupported_shapes(self):
        from repro.core.machines import clustered_dependence_8way

        with pytest.raises(ValueError, match="cannot compile"):
            generate_source(clustered_dependence_8way())

    def test_compiled_runner_rejects_unsupported_shapes(self):
        from repro.core.machines import dependence_based_8way

        with pytest.raises(ValueError, match="cannot compile"):
            compiled_runner(dependence_based_8way())

    def test_source_is_a_flat_function(self):
        source = generate_source(baseline_8way())
        assert "def _compiled_run(sim, max_cycles):" in source
        # Constants are folded: the generated body never consults the
        # config object at run time.
        assert "sim.config" not in source


class TestCompileCacheKey:
    """Satellite: the key covers everything that changes the code."""

    def test_key_is_stable(self):
        assert compile_cache_key(baseline_8way(), False, True) == (
            compile_cache_key(baseline_8way(), False, True)
        )

    def test_key_changes_with_machine_config(self):
        assert compile_cache_key(baseline_8way(), False, True) != (
            compile_cache_key(baseline_8way(issue_width=4), False, True)
        )

    def test_key_changes_with_variant_flags(self):
        base = compile_cache_key(baseline_8way(), False, True)
        assert compile_cache_key(baseline_8way(), True, True) != base
        assert compile_cache_key(baseline_8way(), False, False) != base

    def test_key_changes_with_compile_version(self, monkeypatch):
        before = compile_cache_key(baseline_8way(), False, True)
        monkeypatch.setattr(
            compile_mod, "COMPILE_VERSION", COMPILE_VERSION + 1
        )
        assert compile_cache_key(baseline_8way(), False, True) != before

    def test_key_changes_with_planted_bug(self, monkeypatch):
        before = compile_cache_key(baseline_8way(), False, True)
        monkeypatch.setattr(compile_mod, "_PLANTED_BUG", "load_hit_fold")
        assert compile_cache_key(baseline_8way(), False, True) != before

    def test_key_changes_with_strategy_version(self, monkeypatch):
        from repro.uarch.scheduler import ConventionalScheduler

        before = compile_cache_key(baseline_8way(), False, True)
        monkeypatch.setattr(ConventionalScheduler, "version", 2)
        assert compile_cache_key(baseline_8way(), False, True) != before

    def test_key_distinguishes_regfile_strategies(self):
        # read_ports=16 never binds, so behaviour matches unlimited --
        # but the generated code differs (port-budget loop folded in).
        assert compile_cache_key(baseline_8way(), False, True) != (
            compile_cache_key(
                ports_limited_8way(read_ports=16), False, True
            )
        )


class TestCompileCache:
    """Trust-nothing loads, mirroring the campaign result cache."""

    def test_recompile_is_idempotent(self):
        first = compiled_runner(baseline_8way())
        second = compiled_runner(baseline_8way())
        assert first is second
        stats = compile_cache_stats()
        assert stats["compiles"] == 1
        assert stats["cache_hits"] == 1
        assert stats["cached_runners"] == 1
        assert stats["compile_seconds"] > 0

    def test_variants_are_cached_separately(self):
        compiled_runner(baseline_8way())
        compiled_runner(baseline_8way(), traced=True)
        compiled_runner(baseline_8way(), cycle_skip=False)
        assert compile_cache_stats()["cached_runners"] == 3
        assert compile_cache_stats()["compiles"] == 3

    def test_corrupted_entry_is_discarded(self):
        runner = compiled_runner(baseline_8way())
        key = compile_cache_key(baseline_8way(), False, True)
        compile_mod._COMPILE_CACHE[key]["runner"] = "not callable"
        recompiled = compiled_runner(baseline_8way())
        assert callable(recompiled)
        assert recompiled is not runner
        stats = compile_cache_stats()
        assert stats["stale_discards"] == 1
        assert stats["compiles"] == 2

    def test_stale_version_is_discarded(self):
        compiled_runner(baseline_8way())
        key = compile_cache_key(baseline_8way(), False, True)
        compile_mod._COMPILE_CACHE[key]["version"] = COMPILE_VERSION + 1
        compiled_runner(baseline_8way())
        stats = compile_cache_stats()
        assert stats["stale_discards"] == 1
        assert stats["compiles"] == 2

    def test_non_dict_entry_is_discarded(self):
        compiled_runner(baseline_8way())
        key = compile_cache_key(baseline_8way(), False, True)
        compile_mod._COMPILE_CACHE[key] = "garbage"
        assert callable(compiled_runner(baseline_8way()))
        assert compile_cache_stats()["stale_discards"] == 1

    def test_clear_zeroes_everything(self):
        compiled_runner(baseline_8way())
        compile_mod.clear_compile_cache()
        stats = compile_cache_stats()
        assert stats == {
            "compiles": 0,
            "cache_hits": 0,
            "stale_discards": 0,
            "fallbacks": 0,
            "compile_seconds": 0.0,
            "cached_runners": 0,
        }

    def test_fallback_is_counted(self):
        from repro.core.machines import clustered_dependence_8way

        trace = get_trace("li", LENGTH)
        simulate(clustered_dependence_8way(), trace, mode="compiled")
        assert compile_cache_stats()["fallbacks"] == 1
        # ...and nothing was compiled for the unsupported shape.
        assert compile_cache_stats()["compiles"] == 0

    def test_cached_source_is_kept_for_inspection(self):
        compiled_runner(baseline_8way())
        key = compile_cache_key(baseline_8way(), False, True)
        entry = compile_mod._COMPILE_CACHE[key]
        assert "def _compiled_run" in entry["source"]


class TestSimulateModes:
    """The mode switch on the public simulate() entry point."""

    def test_mode_tuple(self):
        assert SIMULATE_MODES == ("reference", "fast", "compiled")

    def test_unknown_mode_rejected(self):
        trace = get_trace("li", LENGTH)
        with pytest.raises(ValueError, match="unknown simulate mode"):
            simulate(baseline_8way(), trace, mode="jit")

    def test_compiled_mode_matches_fast(self):
        trace = get_trace("li", LENGTH)
        fast = simulate(baseline_8way(), trace).to_dict()
        compiled = simulate(baseline_8way(), trace, mode="compiled").to_dict()
        assert compiled == fast


class TestPlantedCompilerBug:
    """The knobs the fuzzer self-test turns must actually miscompile."""

    def test_load_hit_fold_diverges_from_fast(self, monkeypatch):
        monkeypatch.setattr(compile_mod, "_PLANTED_BUG", "load_hit_fold")
        trace = get_trace("gcc", LENGTH)
        bugged = run_compiled(PipelineSimulator(baseline_8way(), trace))
        fast = PipelineSimulator(baseline_8way(), trace).run()
        assert bugged.to_dict() != fast.to_dict()

    def test_clean_compiler_does_not_diverge(self):
        trace = get_trace("gcc", LENGTH)
        clean = run_compiled(PipelineSimulator(baseline_8way(), trace))
        fast = PipelineSimulator(baseline_8way(), trace).run()
        assert clean.to_dict() == fast.to_dict()

    def test_selftest_catches_and_minimizes(self, tmp_path):
        from repro.verify.selftest import run_compile_selftest

        result = run_compile_selftest(
            cases=8, seed=1, repro_dir=tmp_path, max_minimized=1
        )
        assert result.detected
        assert result.reproducer is not None
        assert result.minimized_instructions is not None
        assert result.minimized_instructions <= 12
        # The knob was restored and no sabotaged runner survived.
        assert compile_mod._PLANTED_BUG is None
        assert compile_cache_stats()["cached_runners"] == 0


class TestCompiledProgressGuard:
    """Satellite: the no-forward-progress guard fires *inside* the
    compiled step function -- a deadlocking port-budget shape must
    raise the interpreter's exact message shapes, not hang."""

    def test_guard_fires_with_cycle_skip(self, monkeypatch):
        monkeypatch.setattr(compile_mod, "_PLANTED_BUG", "port_leak")
        trace = get_trace("gcc", 50)
        sim = PipelineSimulator(ports_limited_8way(), trace, cycle_skip=True)
        with pytest.raises(
            RuntimeError,
            match=r"no forward progress possible at cycle \d+: no "
                  r"scheduled event remains \(13/50 committed\) -- "
                  r"simulator bug",
        ):
            run_compiled(sim)

    def test_guard_fires_without_cycle_skip(self, monkeypatch):
        monkeypatch.setattr(compile_mod, "_PLANTED_BUG", "port_leak")
        trace = get_trace("gcc", 50)
        sim = PipelineSimulator(ports_limited_8way(), trace, cycle_skip=False)
        with pytest.raises(
            RuntimeError,
            match=r"no forward progress after \d+ cycles "
                  r"\(13/50 committed\) -- simulator bug",
        ):
            run_compiled(sim)
