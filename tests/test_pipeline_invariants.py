"""Post-hoc structural invariants of the pipeline timing model.

Each check runs a machine over a trace, then audits the simulator's
per-instruction timing arrays for properties that must hold for *any*
correct out-of-order machine: program-order commit, width limits
actually enforced cycle by cycle, dependence-respecting issue times,
FIFO in-order issue, memory-ordering rules, and cluster port limits.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machines import baseline_8way, dependence_based_8way
from repro.isa.instructions import OpClass
from repro.uarch.config import ClusterConfig, MachineConfig, SelectionPolicy, SteeringPolicy
from repro.uarch.depend import NO_PRODUCER, dependence_info
from repro.uarch.pipeline import PipelineSimulator
from repro.workloads import SyntheticConfig, get_trace, synthetic_trace
from tests.machines import STEERED_MACHINES

MACHINES = STEERED_MACHINES


def run(config, trace):
    simulator = PipelineSimulator(config, trace)
    simulator.run()
    return simulator


def audit(simulator):
    """Assert every machine-independent invariant on a finished run."""
    config = simulator.config
    insts = simulator.insts
    n = len(insts)
    info = dependence_info(simulator.trace)
    issue = simulator.issue_cycle
    complete = simulator.complete_cycle
    cluster = simulator.cluster_of

    issued_per_cycle: dict[int, int] = {}
    mem_per_cycle: dict[int, int] = {}
    fu_per_cycle: dict[tuple[int, int], int] = {}

    for seq in range(n):
        assert simulator.issued[seq], f"inst {seq} never issued"
        # Completion after issue, by at least the unit latency.
        assert complete[seq] >= issue[seq] + 1
        # Execution cluster is valid.
        assert 0 <= cluster[seq] < len(config.clusters)
        issued_per_cycle[issue[seq]] = issued_per_cycle.get(issue[seq], 0) + 1
        key = (issue[seq], cluster[seq])
        fu_per_cycle[key] = fu_per_cycle.get(key, 0) + 1
        if insts[seq].op_class in (OpClass.LOAD, OpClass.STORE):
            mem_per_cycle[issue[seq]] = mem_per_cycle.get(issue[seq], 0) + 1
        # Register dependences: a consumer issues no earlier than its
        # producer's value arrives in the consumer's cluster.
        for producer in info.producers[seq]:
            if producer == NO_PRODUCER:
                continue
            arrival = complete[producer] + (config.wakeup_select_stages - 1)
            if cluster[producer] != cluster[seq]:
                arrival += config.extra_bypass_latency
            assert issue[seq] >= arrival, (
                f"inst {seq} issued at {issue[seq]} before operand from "
                f"{producer} arrived at {arrival}"
            )
        # Memory ordering: loads issue only after every earlier store
        # has issued (all prior store addresses known, Table 3).
        # (Checked pairwise below for a sample to stay fast.)

    # Width limits, enforced every cycle.
    assert max(issued_per_cycle.values(), default=0) <= config.issue_width
    if mem_per_cycle:
        assert max(mem_per_cycle.values()) <= config.cache.ports
    for (cycle_, cluster_index), count in fu_per_cycle.items():
        assert count <= config.clusters[cluster_index].fu_count, (
            f"cluster {cluster_index} issued {count} at cycle {cycle_}"
        )

    # Load-after-store ordering: a load issues no earlier than every
    # earlier store (its address must be known, Table 3).
    stores = [seq for seq in range(n) if insts[seq].is_store]
    loads = [seq for seq in range(n) if insts[seq].op_class is OpClass.LOAD]
    for load in loads:
        for store in stores:
            if store > load:
                break
            assert issue[load] >= issue[store], (
                f"load {load} issued at {issue[load]} before earlier "
                f"store {store} issued at {issue[store]}"
            )

    # Commit accounting.
    assert simulator.stats.committed == n
    assert simulator.in_flight == 0
    assert simulator.free_int_regs == config.int_phys_regs - 32
    assert simulator.free_fp_regs == config.fp_phys_regs - 32


@pytest.mark.parametrize("machine", sorted(MACHINES))
@pytest.mark.parametrize("workload", ["compress", "li", "vortex"])
def test_invariants_on_workloads(machine, workload):
    trace = get_trace(workload, 1_500)
    audit(run(MACHINES[machine](), trace))


@pytest.mark.parametrize("machine", sorted(MACHINES))
def test_invariants_with_pipelined_window_logic(machine):
    trace = get_trace("gcc", 1_200)
    audit(run(MACHINES[machine](wakeup_select_stages=2), trace))


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=10_000),
    st.sampled_from(sorted(MACHINES)),
    st.floats(min_value=0.0, max_value=0.4),
)
def test_invariants_on_synthetic_traces(seed, machine, branch_fraction):
    trace = synthetic_trace(
        SyntheticConfig(length=600, seed=seed, branch_fraction=branch_fraction)
    )
    audit(run(MACHINES[machine](), trace))


@st.composite
def machine_configs(draw):
    """Arbitrary *valid* machine configurations across the design
    space: cluster counts, buffer organisations, widths, steering and
    selection policies."""
    n_clusters = draw(st.sampled_from([1, 2]))
    uses_fifos = draw(st.booleans())
    fu_count = draw(st.sampled_from([1, 2, 4]))
    if uses_fifos:
        cluster = ClusterConfig(
            fifo_count=draw(st.sampled_from([2, 4, 8])),
            fifo_depth=draw(st.sampled_from([2, 4, 8])),
            fu_count=fu_count,
        )
        steering = SteeringPolicy.FIFO_DISPATCH
    else:
        cluster = ClusterConfig(
            window_size=draw(st.sampled_from([4, 16, 32])), fu_count=fu_count
        )
        if n_clusters == 1:
            steering = SteeringPolicy.NONE
        else:
            steering = draw(
                st.sampled_from(
                    [
                        SteeringPolicy.WINDOW_DISPATCH,
                        SteeringPolicy.RANDOM,
                        SteeringPolicy.EXEC_DRIVEN,
                        SteeringPolicy.MODULO,
                        SteeringPolicy.LEAST_LOADED,
                    ]
                )
            )
    return MachineConfig(
        name="fuzz",
        fetch_width=draw(st.sampled_from([2, 4, 8])),
        dispatch_width=draw(st.sampled_from([2, 4, 8])),
        issue_width=draw(st.sampled_from([1, 4, 8])),
        retire_width=draw(st.sampled_from([2, 16])),
        # The limit must cover the buffers (they could never fill
        # otherwise, and MachineConfig rejects that).
        max_in_flight=max(
            draw(st.sampled_from([16, 128])), n_clusters * cluster.capacity
        ),
        wakeup_select_stages=draw(st.sampled_from([1, 2])),
        inter_cluster_bypass_cycles=draw(st.sampled_from([1, 2, 3])),
        selection=draw(st.sampled_from(list(SelectionPolicy))),
        clusters=(cluster,) * n_clusters,
        steering=steering,
    )


@settings(max_examples=25, deadline=None)
@given(machine_configs(), st.integers(min_value=1, max_value=10_000))
def test_invariants_over_design_space(config, seed):
    """Fuzz: every valid machine commits every trace and satisfies
    the structural invariants."""
    trace = synthetic_trace(SyntheticConfig(length=400, seed=seed))
    audit(run(config, trace))


@pytest.mark.parametrize("workload", ["compress", "gcc", "li", "m88ksim"])
def test_depth_one_fifos_degenerate_to_flexible_window(workload):
    """A FIFO machine with 64 depth-1 FIFOs *is* a 64-entry flexible
    window: every instruction is a head, so select sees everything,
    and capacity stalls coincide.  The two machines must agree
    cycle-for-cycle -- a strong cross-check between the window and
    FIFO implementations."""
    trace = get_trace(workload, 3_000)
    window = run(baseline_8way(window_size=64), trace)
    fifos = run(dependence_based_8way(fifo_count=64, fifo_depth=1), trace)
    assert window.cycle == fifos.cycle
    assert window.issue_cycle == fifos.issue_cycle


def test_fifo_heads_issue_in_order():
    """Within one FIFO, issue cycles must be strictly increasing for
    instructions resident at the same time (heads-only issue)."""
    trace = get_trace("m88ksim", 1_500)
    simulator = PipelineSimulator(dependence_based_8way(), trace)
    order: dict[tuple[int, int], list[int]] = {}
    original = simulator._issue_one

    def recording(seq, cluster_index, fifo_index):
        if fifo_index is not None:
            order.setdefault((cluster_index, fifo_index), []).append(seq)
        original(seq, cluster_index, fifo_index)

    simulator._issue_one = recording
    simulator.run()
    assert order, "FIFO machine issued nothing through FIFOs"
    for seqs in order.values():
        cycles = [simulator.issue_cycle[s] for s in seqs]
        assert all(b > a for a, b in zip(cycles, cycles[1:])), (
            "a FIFO issued two instructions in the same cycle"
        )
