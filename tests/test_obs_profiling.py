"""Tests for the host-profiling harness (``repro.obs.profiling``)."""

from repro.core.machines import baseline_8way
from repro.obs import ProfileReport, profile_simulation
from repro.obs.events import EventTracer
from repro.obs.profiling import STAGE_METHODS, profile_run
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace


class TestProfileSimulation:
    def test_stats_match_unprofiled_run(self):
        trace = get_trace("li", 1_500)
        config = baseline_8way()
        plain = simulate(config, trace)
        stats, report = profile_simulation(config, trace)
        assert stats.to_dict() == plain.to_dict()
        assert report.cycles == stats.cycles
        assert report.instructions == stats.committed

    def test_all_stages_timed(self):
        stats, report = profile_simulation(
            baseline_8way(), get_trace("gcc", 1_500)
        )
        assert set(report.stage_seconds) == {
            label for _, label in STAGE_METHODS
        }
        assert all(v >= 0 for v in report.stage_seconds.values())
        assert sum(report.stage_seconds.values()) <= report.wall_seconds

    def test_rates_positive(self):
        _, report = profile_simulation(baseline_8way(), get_trace("li", 1_000))
        assert report.wall_seconds > 0
        assert report.instructions_per_second > 0
        assert report.cycles_per_second > 0
        assert report.overhead_seconds >= 0

    def test_profiling_composes_with_tracer(self):
        tracer = EventTracer()
        stats, report = profile_simulation(
            baseline_8way(), get_trace("li", 1_000), tracer=tracer
        )
        assert tracer.emitted > 0
        assert report.instructions == stats.committed

    def test_format_report_mentions_every_stage(self):
        _, report = profile_simulation(baseline_8way(), get_trace("li", 800))
        text = report.format_report()
        assert isinstance(report, ProfileReport)
        for _, label in STAGE_METHODS:
            assert label in text
        assert "instructions/s" in text

    def test_instrumentation_does_not_leak(self):
        """Profiling patches bound methods on one instance only."""
        from repro.uarch.pipeline import PipelineSimulator

        profile_simulation(baseline_8way(), get_trace("li", 500))
        fresh = PipelineSimulator(baseline_8way(), get_trace("li", 500))
        assert "_fetch" not in vars(fresh)
        assert fresh.run().committed == 500


class TestProfileRun:
    def test_returns_result_and_seconds(self):
        trace = get_trace("li", 500)
        stats, seconds = profile_run(simulate, baseline_8way(), trace)
        assert stats.committed == 500
        assert seconds > 0

    def test_passes_keyword_arguments(self):
        tracer = EventTracer()
        stats, _ = profile_run(
            simulate, baseline_8way(), get_trace("li", 500), tracer=tracer
        )
        assert stats.committed == 500
        assert tracer.emitted > 0
