"""Tests for the host-profiling harness (``repro.obs.profiling``)."""

from repro.core.machines import baseline_8way
from repro.obs import ProfileReport, profile_simulation
from repro.obs.events import EventTracer
from repro.obs.profiling import STAGE_METHODS, profile_run
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace


class TestProfileSimulation:
    def test_stats_match_unprofiled_run(self):
        trace = get_trace("li", 1_500)
        config = baseline_8way()
        plain = simulate(config, trace)
        stats, report = profile_simulation(config, trace)
        assert stats.to_dict() == plain.to_dict()
        assert report.cycles == stats.cycles
        assert report.instructions == stats.committed

    def test_all_stages_timed(self):
        stats, report = profile_simulation(
            baseline_8way(), get_trace("gcc", 1_500)
        )
        assert set(report.stage_seconds) == {
            label for _, label in STAGE_METHODS
        }
        assert all(v >= 0 for v in report.stage_seconds.values())
        assert sum(report.stage_seconds.values()) <= report.wall_seconds

    def test_rates_positive(self):
        _, report = profile_simulation(baseline_8way(), get_trace("li", 1_000))
        assert report.wall_seconds > 0
        assert report.instructions_per_second > 0
        assert report.cycles_per_second > 0
        assert report.overhead_seconds >= 0

    def test_profiling_composes_with_tracer(self):
        tracer = EventTracer()
        stats, report = profile_simulation(
            baseline_8way(), get_trace("li", 1_000), tracer=tracer
        )
        assert tracer.emitted > 0
        assert report.instructions == stats.committed

    def test_format_report_mentions_every_stage(self):
        _, report = profile_simulation(baseline_8way(), get_trace("li", 800))
        text = report.format_report()
        assert isinstance(report, ProfileReport)
        for _, label in STAGE_METHODS:
            assert label in text
        assert "instructions/s" in text

    def test_instrumentation_does_not_leak(self):
        """Profiling patches bound methods on one instance only."""
        from repro.uarch.pipeline import PipelineSimulator

        profile_simulation(baseline_8way(), get_trace("li", 500))
        fresh = PipelineSimulator(baseline_8way(), get_trace("li", 500))
        assert "_fetch" not in vars(fresh)
        assert fresh.run().committed == 500


class TestProfileRun:
    def test_returns_result_and_seconds(self):
        trace = get_trace("li", 500)
        stats, seconds = profile_run(simulate, baseline_8way(), trace)
        assert stats.committed == 500
        assert seconds > 0

    def test_passes_keyword_arguments(self):
        tracer = EventTracer()
        stats, _ = profile_run(
            simulate, baseline_8way(), get_trace("li", 500), tracer=tracer
        )
        assert stats.committed == 500
        assert tracer.emitted > 0


class TestZeroDivisionGuards:
    """Satellite regression tests: rate properties return 0.0 (never
    raise ZeroDivisionError) when no wall time has accrued."""

    def test_campaign_profile_rate_with_no_time(self):
        from repro.obs.profiling import CampaignProfile

        profile = CampaignProfile()
        assert profile.wall_seconds == 0.0
        assert profile.instructions_per_second == 0.0

    def test_fuzz_profile_rate_with_no_time(self):
        from repro.obs.profiling import FuzzProfile

        profile = FuzzProfile()
        assert profile.cases_per_second == 0.0

    def test_profile_report_rates_with_no_time(self):
        report = ProfileReport()
        assert report.instructions_per_second == 0.0
        assert report.cycles_per_second == 0.0


class TestRegistryBackedCampaignProfile:
    """The profile is a thin view over its metrics registry."""

    def make_profile(self):
        from repro.obs.profiling import CampaignProfile

        profile = CampaignProfile(jobs=2, wall_seconds=2.0)
        profile.note_cell("baseline/gcc", 0.0, 0, source="cache")
        profile.note_cell("baseline/li", 1.0, 800)
        return profile

    def test_note_cell_feeds_registry(self):
        profile = self.make_profile()
        assert profile.cache_hits == 1
        assert profile.simulated_cells == 1
        assert profile.cell_count == 2
        assert profile.simulated_instructions == 800
        assert profile.instructions_per_second == 400.0
        assert profile.registry.value(
            "campaign_cells_total", {"source": "cache"}) == 1
        assert profile.registry.value(
            "campaign_instructions_total", {"source": "simulated"}) == 800

    def test_pool_counters_are_registry_views(self):
        profile = self.make_profile()
        profile.retries += 1
        profile.timeouts += 2
        profile.serial_fallbacks += 1
        assert profile.retries == 1
        assert profile.registry.value("pool_retries_total") == 1
        assert profile.registry.value("pool_timeouts_total") == 2
        assert profile.registry.value("pool_serial_fallbacks_total") == 1

    def test_to_dict_carries_metrics_snapshot(self):
        payload = self.make_profile().to_dict()
        assert payload["cache_hits"] == 1
        assert payload["metrics"]["kind"] == "repro-metrics-snapshot"
        assert "campaign_cells_total" in payload["metrics"]["metrics"]

    def test_merge_worker_snapshot(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.profiling import CampaignProfile

        worker = MetricsRegistry()
        worker.counter("campaign_cells_total").inc(
            3, {"source": "simulated"})
        profile = CampaignProfile()
        profile.merge_worker_snapshot(worker.snapshot().to_dict())
        profile.merge_worker_snapshot(None)  # tolerated: no-op
        assert profile.simulated_cells == 3

    def test_format_metrics_matches_snapshot(self):
        from repro.obs.metrics import format_snapshot

        profile = self.make_profile()
        assert profile.format_metrics() == format_snapshot(
            profile.snapshot())


class TestRegistryBackedFuzzProfile:
    def test_note_case_feeds_registry(self):
        from repro.obs.profiling import FuzzProfile

        profile = FuzzProfile(wall_seconds=2.0)
        profile.note_case("baseline", "random", 0.5, failed=False)
        profile.note_case("clustered", "biased", 0.5, failed=True)
        assert profile.cases == 2
        assert profile.failures == 1
        assert profile.cases_per_second == 1.0
        assert profile.shape_counts == {"baseline": 1, "clustered": 1}
        assert profile.kind_counts == {"biased": 1, "random": 1}
        assert "metrics" in profile.to_dict()


class TestSimulationMetrics:
    def test_profile_simulation_records_into_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        config = baseline_8way()
        stats, report = profile_simulation(
            config, get_trace("li", 600), registry=registry
        )
        labels = {"machine": config.name, "workload": "li"}
        assert registry.value("sim_instructions_total",
                              labels) == stats.committed
        assert registry.value("sim_cycles_total", labels) == stats.cycles
        assert registry.value("sim_wall_seconds_total", labels) > 0

    def test_report_snapshot_includes_stage_histograms(self):
        _, report = profile_simulation(baseline_8way(), get_trace("li", 600))
        snapshot = report.snapshot()
        assert "profile_stage_seconds_total" in snapshot.metrics
        assert "sim_instructions_total" in snapshot.metrics
