"""The design-space service: contract, failure modes, coalescing.

Most tests drive :meth:`DesignSpaceService.handle_http` directly --
it is the whole service minus the socket layer, so routing, errors,
coalescing, overload, and timeouts are all exercised without binding
a port.  One socket-layer class at the end proves the HTTP framing
and the shared load-generation client against a real listener.

Simulations are stubbed with an injected ``runner`` on a thread pool
(the production default is a process pool over the campaign's
``simulate_cell``; the payload contract is identical), so the suite
is fast and can block/fail/count simulations deterministically.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading

import pytest

from repro.core import results_io
from repro.obs.ledger import Ledger
from repro.service import (
    ERROR_CODES,
    ROUTES,
    SERVICE_SCHEMA,
    DesignSpaceService,
    envelope,
    error_body,
)
from repro.service.app import cell_cache_key
from repro.service.coalescer import Coalescer
from repro.service.loadgen import get_json, run_burst
from repro.uarch.stats import SimStats
from repro.workloads import WORKLOAD_NAMES


def run(coro):
    return asyncio.run(coro)


class CountingRunner:
    """A fake ``simulate_cell`` that counts invocations (thread-safe)
    and can block on an event or raise on demand."""

    def __init__(self, delay: float = 0.0,
                 gate: threading.Event | None = None,
                 fail: bool = False) -> None:
        self.calls = 0
        self.delay = delay
        self.gate = gate
        self.fail = fail
        self._lock = threading.Lock()

    def __call__(self, cell) -> dict:
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(10.0), "test gate never opened"
        if self.delay:
            import time

            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("injected simulation failure")
        stats = SimStats(machine=cell.machine, workload=cell.workload,
                         committed=cell.max_instructions,
                         cycles=max(1, cell.max_instructions // 2))
        return {"stats": stats.to_dict(), "seconds": 0.01, "metrics": None}


def make_service(tmp_path=None, **kwargs) -> DesignSpaceService:
    """A service with a thread-pool executor and a fake runner."""
    kwargs.setdefault("runner", CountingRunner())
    kwargs.setdefault(
        "executor", concurrent.futures.ThreadPoolExecutor(max_workers=4))
    kwargs.setdefault("cache_dir",
                      str(tmp_path / "cache") if tmp_path else None)
    kwargs.setdefault("instructions", 500)
    return DesignSpaceService(**kwargs)


async def get(service, target, method="GET"):
    status, headers, body = await service.handle_http(method, target)
    payload = json.loads(body) if body else {}
    return status, headers, payload


# ----------------------------------------------------------------------
# contract: envelope and error bodies
# ----------------------------------------------------------------------


class TestSchema:
    def test_envelope_carries_versions(self):
        payload = envelope({"x": 1})
        assert payload["schema"] == SERVICE_SCHEMA
        assert payload["stats_format"] == results_io.FORMAT_VERSION
        assert payload["x"] == 1

    def test_envelope_reads_format_version_at_call_time(self, monkeypatch):
        before = envelope({})["stats_format"]
        monkeypatch.setattr(results_io, "FORMAT_VERSION",
                            results_io.FORMAT_VERSION + 1)
        assert envelope({})["stats_format"] == before + 1

    def test_error_body_structure(self):
        body = error_body(404, "nope", detail={"known": []})
        assert body["schema"] == SERVICE_SCHEMA
        error = body["error"]
        assert error["status"] == 404
        assert error["code"] == "not_found"
        assert error["message"] == "nope"
        assert error["detail"] == {"known": []}

    def test_every_error_code_is_stable(self):
        assert ERROR_CODES == {400: "bad_request", 404: "not_found",
                               405: "method_not_allowed",
                               500: "internal_error", 503: "overloaded",
                               504: "simulation_timeout"}


# ----------------------------------------------------------------------
# the coalescer in isolation
# ----------------------------------------------------------------------


class TestCoalescer:
    def test_single_flight_per_key(self):
        async def scenario():
            coalescer = Coalescer()
            calls = 0

            async def work():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.01)
                return "result"

            results = await asyncio.gather(*[
                coalescer.join("k", work) for _ in range(16)
            ])
            assert calls == 1
            assert all(value == "result" for value, _ in results)
            assert sum(1 for _, leader in results if leader) == 1
            assert coalescer.inflight == 0

        run(scenario())

    def test_waiter_timeout_does_not_cancel_the_work(self):
        async def scenario():
            coalescer = Coalescer()
            finished = asyncio.Event()

            async def work():
                await asyncio.sleep(0.05)
                finished.set()
                return 42

            with pytest.raises(asyncio.TimeoutError):
                await coalescer.join("k", work, timeout=0.005)
            # The shared task survives the impatient waiter.
            value, leader = await coalescer.join("k", work, timeout=5.0)
            assert value == 42 and not leader
            assert finished.is_set()

        run(scenario())

    def test_failure_propagates_and_clears_the_key(self):
        async def scenario():
            coalescer = Coalescer()

            async def explode():
                raise RuntimeError("boom")

            with pytest.raises(RuntimeError):
                await coalescer.join("k", explode)
            assert not coalescer.is_inflight("k")

        run(scenario())


# ----------------------------------------------------------------------
# routing and failure modes
# ----------------------------------------------------------------------


class TestRouting:
    def test_healthz(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(get(service, "/v1/healthz"))
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workloads"] == list(WORKLOAD_NAMES)
        assert payload["schema"] == SERVICE_SCHEMA

    def test_machines_lists_the_registry(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(get(service, "/v1/machines"))
        assert status == 200
        names = [m["name"] for m in payload["machines"]]
        assert "baseline" in names and names == sorted(names)
        assert all("strategy" in m for m in payload["machines"])

    def test_workloads_lists_the_registry(self, tmp_path):
        from repro.workloads.registry import (
            WORKLOAD_VERSION,
            workload_names,
        )

        service = make_service(tmp_path)
        status, _, payload = run(get(service, "/v1/workloads"))
        assert status == 200
        names = [w["name"] for w in payload["workloads"]]
        assert tuple(names) == workload_names()  # registration order
        assert names[: len(WORKLOAD_NAMES)] == list(WORKLOAD_NAMES)
        assert payload["count"] == len(names)
        assert payload["workload_version"] == WORKLOAD_VERSION
        for entry in payload["workloads"]:
            assert entry["kind"] in ("kernel", "synthetic", "external")
            assert entry["description"]
            assert len(entry["fingerprint"]) == 64

    def test_workloads_kind_filter(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(
            get(service, "/v1/workloads?kind=synthetic"))
        assert status == 200
        assert payload["workloads"]
        assert all(w["name"].startswith("zoo_")
                   for w in payload["workloads"])

    def test_workloads_bad_kind_is_400(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(get(service, "/v1/workloads?kind=jpeg"))
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "kernel" in payload["error"]["detail"]["known"]

    def test_workloads_profile(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(
            get(service, "/v1/workloads?workload=zoo_br_coin&n=600"))
        assert status == 200
        profile = payload["profile"]
        assert profile["name"] == "zoo_br_coin"
        assert profile["kind"] == "synthetic"
        assert 0 < profile["instructions"] <= 600
        assert 0.0 < profile["branch_fraction"] < 1.0

    def test_workloads_unknown_profile_is_404(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(
            get(service, "/v1/workloads?workload=nope"))
        assert status == 404
        assert "li" in payload["error"]["detail"]["known"]

    def test_delay_breakdown(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(get(service, "/v1/delay/baseline?tech=0.18"))
        assert status == 200
        (tech,) = payload["techs"]
        assert tech["tech"] == "0.18um"
        assert tech["clock_ps"] > 0
        assert any(s["delay_ps"] > 0 for s in tech["structures"])

    def test_unknown_route_is_404(self, tmp_path):
        service = make_service(tmp_path)
        status, _, payload = run(get(service, "/v1/nope"))
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert set(payload["error"]["detail"]["routes"]) == set(ROUTES)

    def test_non_get_is_405_with_allow_header(self, tmp_path):
        service = make_service(tmp_path)
        status, headers, payload = run(get(service, "/v1/cell",
                                           method="POST"))
        assert status == 405
        assert headers["Allow"] == "GET, HEAD"
        assert payload["error"]["code"] == "method_not_allowed"

    def test_head_gets_headers_without_body(self, tmp_path):
        service = make_service(tmp_path)

        async def scenario():
            status, _, body = await service.handle_http(
                "HEAD", "/v1/healthz")
            assert status == 200 and body == b""

        run(scenario())

    def test_metrics_endpoint_is_prometheus_text(self, tmp_path):
        service = make_service(tmp_path)

        async def scenario():
            await service.handle_http("GET", "/v1/healthz")
            status, headers, body = await service.handle_http(
                "GET", "/v1/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert b"service_requests_total" in body

        run(scenario())


class TestFailureModes:
    """Satellite: every client-visible failure is structured."""

    @pytest.mark.parametrize("target,fragment", [
        ("/v1/cell?workload=gcc", "machine"),
        ("/v1/cell?machine=baseline", "workload"),
        ("/v1/cell?machine=baseline&workload=gcc&n=frog", "integer"),
        ("/v1/cell?machine=baseline&workload=gcc&n=-3", "positive"),
        ("/v1/cell?machine=baseline&workload=gcc&bogus=1", "bogus"),
        ("/v1/frontier?tech=fast", "tech"),
        ("/v1/frontier?machines=", "at least one"),
    ])
    def test_malformed_params_are_400(self, tmp_path, target, fragment):
        service = make_service(tmp_path)
        status, _, payload = run(get(service, target))
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert fragment in payload["error"]["message"]

    @pytest.mark.parametrize("target", [
        "/v1/cell?machine=quantum&workload=gcc",
        "/v1/cell?machine=baseline&workload=linpack",
        "/v1/cell?machine=baseline&workload=gcc&tech=0.5",
        "/v1/delay/quantum",
    ])
    def test_unknown_names_are_404(self, tmp_path, target):
        service = make_service(tmp_path)
        status, _, payload = run(get(service, target))
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert "known" in payload["error"]["detail"]

    def test_overload_is_503_with_retry_after(self, tmp_path):
        gate = threading.Event()
        service = make_service(tmp_path, runner=CountingRunner(gate=gate),
                               queue_depth=1)

        async def scenario():
            first = asyncio.ensure_future(
                get(service, "/v1/cell?machine=baseline&workload=gcc"))
            while service.coalescer.inflight < 1:
                await asyncio.sleep(0.001)
            # Distinct cell while the only queue slot is taken -> shed.
            status, headers, payload = await get(
                service, "/v1/cell?machine=baseline&workload=compress")
            assert status == 503
            assert payload["error"]["code"] == "overloaded"
            assert int(headers["Retry-After"]) >= 1
            # Same cell as the in-flight one still joins (coalesced,
            # never shed).
            joined = asyncio.ensure_future(
                get(service, "/v1/cell?machine=baseline&workload=gcc"))
            gate.set()
            status, _, payload = await first
            assert status == 200 and payload["source"] == "simulated"
            status, _, _ = await joined
            assert status == 200

        run(scenario())

    def test_simulation_timeout_is_504_and_still_caches(self, tmp_path):
        runner = CountingRunner(delay=0.2)
        service = make_service(tmp_path, runner=runner,
                               request_timeout=0.02)

        async def scenario():
            status, _, payload = await get(
                service, "/v1/cell?machine=baseline&workload=gcc")
            assert status == 504
            assert payload["error"]["code"] == "simulation_timeout"
            # The shielded simulation finishes and lands in the cache.
            while service.coalescer.inflight:
                await asyncio.sleep(0.01)
            status, _, payload = await get(
                service, "/v1/cell?machine=baseline&workload=gcc")
            assert status == 200
            assert payload["source"] in ("memory", "cache")
            assert runner.calls == 1

        run(scenario())

    def test_worker_failure_is_500_and_retried_next_time(self, tmp_path):
        service = make_service(tmp_path, runner=CountingRunner(fail=True))

        async def scenario():
            status, _, payload = await get(
                service, "/v1/cell?machine=baseline&workload=gcc")
            assert status == 500
            assert payload["error"]["code"] == "internal_error"
            # A failed simulation is never memoised; the key is free.
            assert not service.coalescer.is_inflight(
                cell_cache_key(service.machines["baseline"], "gcc",
                               service.default_instructions))

        run(scenario())


# ----------------------------------------------------------------------
# coalescing: N identical concurrent misses, one simulation
# ----------------------------------------------------------------------


class TestCoalescedServing:
    def test_n_concurrent_misses_one_simulation_one_ledger_entry(
            self, tmp_path):
        runner = CountingRunner(delay=0.05)
        service = make_service(tmp_path, runner=runner)
        target = "/v1/cell?machine=baseline&workload=gcc"

        async def scenario():
            results = await asyncio.gather(*[
                get(service, target) for _ in range(12)
            ])
            assert [status for status, _, _ in results] == [200] * 12
            assert all(p["source"] == "simulated" for _, _, p in results)

        run(scenario())
        assert runner.calls == 1
        assert service.registry.value("service_simulations_total") == 1
        assert service.registry.value("service_coalesced_total") == 11
        # Exactly one ledger-recorded simulation (the autouse fixture
        # points the ledger at an isolated tmp dir).
        entries = Ledger().entries(kind="service")
        assert len(entries) == 1
        assert entries[0].extra["machine"] == "baseline"
        assert entries[0].extra["workload"] == "gcc"

    def test_cell_is_served_from_memory_after_first_miss(self, tmp_path):
        runner = CountingRunner()
        service = make_service(tmp_path, runner=runner)
        target = "/v1/cell?machine=baseline&workload=gcc"

        async def scenario():
            _, _, first = await get(service, target)
            _, _, second = await get(service, target)
            assert first["source"] == "simulated"
            assert second["source"] == "memory"

        run(scenario())
        assert runner.calls == 1

    def test_disk_cache_survives_service_restart(self, tmp_path):
        runner = CountingRunner()
        first = make_service(tmp_path, runner=runner)
        run(get(first, "/v1/cell?machine=baseline&workload=gcc"))
        second = make_service(tmp_path, runner=runner)
        _, _, payload = run(
            get(second, "/v1/cell?machine=baseline&workload=gcc"))
        assert payload["source"] == "cache"
        assert runner.calls == 1

    def test_frontier_coalesces_across_cells(self, tmp_path):
        runner = CountingRunner()
        service = make_service(tmp_path, runner=runner, jobs=4)
        target = "/v1/frontier?tech=all&machines=baseline,dependence"

        async def scenario():
            status, _, payload = await get(service, target)
            assert status == 200
            # 2 machines x 3 techs; IPC cells simulate once per
            # machine x workload regardless of tech count.
            assert len(payload["points"]) == 6
            assert {p["tech"] for p in payload["points"]} == {
                "0.8um", "0.35um", "0.18um"}

        run(scenario())
        assert runner.calls == 2 * len(WORKLOAD_NAMES)


# ----------------------------------------------------------------------
# schema-version sensitivity (satellite 6)
# ----------------------------------------------------------------------


class TestSchemaSensitivity:
    def test_format_bump_changes_cache_key_and_envelope(
            self, tmp_path, monkeypatch):
        runner = CountingRunner()
        service = make_service(tmp_path, runner=runner)
        target = "/v1/cell?machine=baseline&workload=gcc"
        _, _, before = run(get(service, target))
        assert before["stats_format"] == results_io.FORMAT_VERSION
        assert runner.calls == 1
        key_before = cell_cache_key(service.machines["baseline"], "gcc",
                                    service.default_instructions)
        monkeypatch.setattr(results_io, "FORMAT_VERSION",
                            results_io.FORMAT_VERSION + 1)
        key_after = cell_cache_key(service.machines["baseline"], "gcc",
                                   service.default_instructions)
        assert key_after != key_before
        # A bumped server re-simulates rather than serving the cell
        # cached under the previous stats format.
        _, _, after = run(get(service, target))
        assert after["stats_format"] == before["stats_format"] + 1
        assert after["source"] == "simulated"
        assert after["cache_key"] == key_after
        assert runner.calls == 2


# ----------------------------------------------------------------------
# the socket layer and the shared load client
# ----------------------------------------------------------------------


class TestSocketLayer:
    def test_http_end_to_end_with_keepalive_burst(self, tmp_path):
        service = make_service(tmp_path)

        async def scenario():
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                status, payload = await get_json(
                    "127.0.0.1", port, "/v1/healthz")
                assert status == 200 and payload["status"] == "ok"
                status, payload = await get_json(
                    "127.0.0.1", port,
                    "/v1/cell?machine=baseline&workload=gcc&tech=0.18")
                assert status == 200
                assert payload["clocked"][0]["bips"] > 0
                result = await run_burst(
                    "127.0.0.1", port,
                    ["/v1/cell?machine=baseline&workload=gcc"],
                    requests=64, concurrency=4)
                assert result.all_ok
                assert result.qps > 0
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_malformed_request_line_is_400(self, tmp_path):
        service = make_service(tmp_path)

        async def scenario():
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(b"NONSENSE\r\n\r\n")
                await writer.drain()
                line = await reader.readline()
                assert b"400" in line
                writer.close()
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())
