"""Tests for the functional register-rename stage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.rename import (
    OutOfPhysicalRegisters,
    RegisterRenamer,
    RenamedInstruction,
)


def make(physical=80, logical=32):
    return RegisterRenamer(physical_registers=physical, logical_registers=logical)


class TestBasics:
    def test_power_on_identity_map(self):
        renamer = make()
        assert renamer.lookup(0) == 0
        assert renamer.lookup(31) == 31
        assert renamer.free_count == 80 - 32

    def test_needs_more_physical_than_logical(self):
        with pytest.raises(ValueError, match="more physical"):
            RegisterRenamer(physical_registers=32, logical_registers=32)

    def test_lookup_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            make().lookup(32)

    def test_rename_allocates_new_register(self):
        renamer = make()
        [result] = renamer.rename_group([((1, 2), 3)])
        assert result.phys_dest is not None
        assert result.phys_dest >= 32  # from the free list
        assert renamer.lookup(3) == result.phys_dest
        assert result.prev_dest == 3  # power-on mapping, freed at commit

    def test_sources_read_current_map(self):
        renamer = make()
        [first] = renamer.rename_group([((), 5)])
        [second] = renamer.rename_group([((5,), None)])
        assert second.phys_srcs == (first.phys_dest,)
        assert second.phys_dest is None


class TestDependenceCheck:
    """The intra-group bypass the paper's SLICE logic implements."""

    def test_same_group_dependence_bypasses_map_table(self):
        renamer = make()
        results = renamer.rename_group([((), 1), ((1,), 2)])
        assert results[1].phys_srcs == (results[0].phys_dest,)
        assert results[1].group_bypassed == (True,)

    def test_unrelated_source_not_bypassed(self):
        renamer = make()
        results = renamer.rename_group([((), 1), ((3,), 2)])
        assert results[1].group_bypassed == (False,)
        assert results[1].phys_srcs == (3,)

    def test_latest_writer_in_group_wins(self):
        renamer = make()
        results = renamer.rename_group([((), 1), ((), 1), ((1,), 2)])
        assert results[2].phys_srcs == (results[1].phys_dest,)
        assert results[1].phys_dest != results[0].phys_dest

    def test_group_writer_chain_prev_dest(self):
        renamer = make()
        results = renamer.rename_group([((), 1), ((), 1)])
        # The second writer frees the first writer's register.
        assert results[1].prev_dest == results[0].phys_dest

    def test_map_table_updated_after_group(self):
        renamer = make()
        results = renamer.rename_group([((), 1), ((), 1)])
        assert renamer.lookup(1) == results[1].phys_dest


class TestFreeListDiscipline:
    def test_stall_when_out_of_registers(self):
        renamer = make(physical=34)  # only 2 free
        renamer.rename_group([((), 1), ((), 2)])
        with pytest.raises(OutOfPhysicalRegisters):
            renamer.rename_group([((), 3)])

    def test_failed_group_leaves_state_unchanged(self):
        renamer = make(physical=34)
        before = renamer.live_mappings()
        with pytest.raises(OutOfPhysicalRegisters):
            renamer.rename_group([((), 1), ((), 2), ((), 3)])
        assert renamer.live_mappings() == before
        assert renamer.free_count == 2

    def test_release_returns_register(self):
        renamer = make(physical=34)
        [result] = renamer.rename_group([((), 1)])
        renamer.release(result.prev_dest)
        assert renamer.free_count == 2

    def test_double_release_rejected(self):
        renamer = make()
        [result] = renamer.rename_group([((), 1)])
        renamer.release(result.prev_dest)
        with pytest.raises(ValueError, match="double release"):
            renamer.release(result.prev_dest)

    def test_release_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            make().release(200)

    def test_commit_cycle_sustains_forever(self):
        # rename -> commit -> release, repeated far beyond the free
        # list size: no leak, no double allocation.
        renamer = make(physical=40)
        live = []
        for step in range(500):
            [result] = renamer.rename_group([(((step % 32),), step % 32)])
            live.append(result)
            if len(live) > 4:
                renamer.release(live.pop(0).prev_dest)
        assert renamer.free_count >= 0


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(
            st.lists(st.integers(min_value=0, max_value=31), max_size=2),
            st.one_of(st.none(), st.integers(min_value=0, max_value=31)),
        ),
        max_size=8,
    ))
    def test_no_two_live_logicals_share_a_physical(self, raw_group):
        renamer = make()
        group = [(tuple(srcs), dest) for srcs, dest in raw_group]
        try:
            renamer.rename_group(group)
        except OutOfPhysicalRegisters:
            return
        mappings = list(renamer.live_mappings().values())
        assert len(mappings) == len(set(mappings))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=31), st.integers(min_value=1, max_value=30))
    def test_consumer_always_sees_latest_value(self, reg, rounds):
        renamer = make(physical=120)
        last_dest = None
        released = []
        for _ in range(rounds):
            [write] = renamer.rename_group([((), reg)])
            if last_dest is not None:
                released.append(write.prev_dest)
            last_dest = write.phys_dest
            [read] = renamer.rename_group([((reg,), None)])
            assert read.phys_srcs == (last_dest,)
            # recycle old registers to keep the free list healthy
            while released:
                renamer.release(released.pop())

    def test_renamed_instruction_is_frozen(self):
        result = RenamedInstruction(
            phys_srcs=(1,), phys_dest=2, prev_dest=3, group_bypassed=(False,)
        )
        with pytest.raises(Exception):
            result.phys_dest = 9  # type: ignore[misc]
