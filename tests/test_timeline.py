"""Tests for the pipeline timeline renderer."""

import pytest

from repro.core.machines import baseline_8way, dependence_based_8way
from repro.isa import assemble, run_to_trace
from repro.obs import EventTracer
from repro.report import render_timeline
from repro.uarch.pipeline import PipelineSimulator


def simulated(source, config=None):
    trace = run_to_trace(assemble(source))
    simulator = PipelineSimulator(
        config or baseline_8way(), trace, tracer=EventTracer()
    )
    simulator.run()
    return simulator


SERIAL = "li r1, 0\nli r2, 1\n" + "\n".join(
    "addu r1, r1, r2" for _ in range(6)
) + "\nhalt\n"


class TestRenderTimeline:
    def test_contains_stage_glyphs(self):
        text = render_timeline(simulated(SERIAL), 0, 8)
        for glyph in ("F", "D", "I", "C"):
            assert glyph in text

    def test_one_row_per_instruction(self):
        text = render_timeline(simulated(SERIAL), 0, 5)
        assert len(text.splitlines()) == 6  # header + 5 rows

    def test_dependent_chain_issues_consecutively(self):
        simulator = simulated(SERIAL)
        text = render_timeline(simulator, 2, 6)
        # Each addu row's I must be one column right of the previous.
        columns = []
        for line in text.splitlines()[1:]:
            columns.append(line.index("I"))
        assert all(b == a + 1 for a, b in zip(columns, columns[1:]))

    def test_fig10_bubble_visible(self):
        config = baseline_8way(wakeup_select_stages=2)
        simulator = simulated(SERIAL, config)
        text = render_timeline(simulator, 2, 6)
        columns = [line.index("I") for line in text.splitlines()[1:]]
        # Two-stage wakeup/select: dependent issues 2 cycles apart.
        assert all(b == a + 2 for a, b in zip(columns, columns[1:]))

    def test_execute_occupancy_for_multicycle_ops(self):
        source = """
            .data
            far: .space 4096
            .text
            main: la r1, far
            lw r2, 2048(r1)
            halt
        """
        simulator = simulated(source)
        text = render_timeline(simulator, 0, 2)
        assert "*" in text  # the cache-miss load occupies execute

    def test_range_validation(self):
        simulator = simulated(SERIAL)
        with pytest.raises(ValueError, match="count"):
            render_timeline(simulator, 0, 0)
        with pytest.raises(ValueError, match="outside trace"):
            render_timeline(simulator, 999, 4)

    def test_width_clipping(self):
        simulator = simulated(SERIAL)
        text = render_timeline(simulator, 0, 8, max_width=5)
        for line in text.splitlines()[1:]:
            # label + at most 5 cycle columns
            assert len(line.split()[-1]) <= 5 + 10  # label may merge; loose

    def test_works_on_fifo_machine(self):
        simulator = simulated(SERIAL, dependence_based_8way())
        assert "I" in render_timeline(simulator, 0, 8)

    def test_requires_tracer(self):
        trace = run_to_trace(assemble(SERIAL))
        simulator = PipelineSimulator(baseline_8way(), trace)
        simulator.run()
        with pytest.raises(ValueError, match="tracer"):
            render_timeline(simulator, 0, 4)

    def test_evicted_events_reported(self):
        trace = run_to_trace(assemble(SERIAL))
        simulator = PipelineSimulator(
            baseline_8way(), trace, tracer=EventTracer(capacity=4)
        )
        simulator.run()
        with pytest.raises(ValueError, match="evicted"):
            render_timeline(simulator, 0, 4)
