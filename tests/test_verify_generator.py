"""Tests for the constrained-random assembly-program generator.

The generator's contract: every emitted program assembles, terminates
on its own (counted loops, forward-only data branches), and is a pure
function of its config -- the properties the fuzzer's determinism and
the oracle's usefulness rest on.
"""

import random

import pytest

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.verify.generator import ProgramGenConfig, generate_source
from repro.verify.sampler import sample_machine, sample_program

#: Enough seeds to hit every emission path (stores, loads, branches,
#: muldiv, fp, calls) without slowing the suite down.
SEEDS = tuple(range(12))


def test_same_config_same_source():
    config = ProgramGenConfig(seed=7)
    assert generate_source(config) == generate_source(config)


def test_different_seeds_differ():
    a = generate_source(ProgramGenConfig(seed=1))
    b = generate_source(ProgramGenConfig(seed=2))
    assert a != b


@pytest.mark.parametrize("seed", SEEDS)
def test_programs_assemble_and_halt(seed):
    rng = random.Random(seed)
    config = sample_program(rng)
    program = assemble(generate_source(config))
    emulator = Emulator(program)
    trace = emulator.run(5_000)
    assert emulator.halted, (
        f"seed {seed}: program did not halt in 5000 instructions"
    )
    assert len(trace) > 0


def test_fraction_validation_rejects_oversum():
    with pytest.raises(ValueError, match="fractions"):
        ProgramGenConfig(seed=0, store_fraction=0.6, load_fraction=0.6)


def test_sampler_never_draws_invalid_fractions():
    """Every reachable sample_program draw satisfies the generator's
    fraction-sum bound (the sampler's choice sets are designed so the
    maxima sum below 1.0)."""
    for seed in range(300):
        sample_program(random.Random(seed))  # must not raise


def test_sampler_machines_are_valid_and_cover_shapes():
    shapes = set()
    for seed in range(120):
        shape, config = sample_machine(random.Random(seed))
        shapes.add(shape)
        assert config.fetch_width >= 1  # config passed __post_init__
    assert len(shapes) >= 6, f"only sampled {sorted(shapes)}"


def test_generated_source_uses_memory_and_control():
    source = generate_source(ProgramGenConfig(seed=3, blocks=4, block_size=16))
    assert ".data" in source
    assert "halt" in source
    assert "sw " in source or "lw " in source
