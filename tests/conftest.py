"""Shared test fixtures.

Every test gets an isolated run ledger: CLI commands append to the
ledger on every invocation, and without this fixture a test calling
``main([...])`` from the repo root would grow a real ``.repro/ledger``
inside the checkout.
"""

import pytest

from repro.obs.ledger import LEDGER_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path / "ledger"))
