"""Tests for the append-only run ledger and the bench-record writer."""

import json

import pytest

from repro.obs.ledger import (
    BENCH_SCHEMA,
    LEDGER_DIR_ENV,
    LEDGER_SCHEMA,
    Ledger,
    LedgerEntry,
    diff_entries,
    git_sha,
    ledger_root,
    record_bench,
    record_profile,
    record_run,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import CampaignProfile


class TestLedgerRoot:
    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path / "env"))
        assert ledger_root(tmp_path / "explicit") == tmp_path / "explicit"

    def test_env_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path / "env"))
        assert ledger_root() == tmp_path / "env"


class TestAppend:
    def test_append_stamps_run_id_and_timestamp(self, tmp_path):
        ledger = Ledger(tmp_path)
        entry = ledger.append(LedgerEntry(kind="simulate", wall_seconds=1.5))
        assert entry.run_id
        assert entry.timestamp > 0
        (stored,) = ledger.entries()
        assert stored.run_id == entry.run_id
        assert stored.wall_seconds == 1.5

    def test_lines_are_single_json_objects(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(LedgerEntry(kind="simulate"))
        ledger.append(LedgerEntry(kind="campaign"))
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert json.loads(line)["schema"] == LEDGER_SCHEMA

    def test_run_id_is_content_addressed(self, tmp_path):
        ledger = Ledger(tmp_path)
        a = ledger.append(LedgerEntry(kind="simulate", timestamp=10.0))
        b = ledger.append(LedgerEntry(kind="simulate", timestamp=10.0))
        c = ledger.append(LedgerEntry(kind="simulate", timestamp=11.0))
        assert a.run_id == b.run_id
        assert a.run_id != c.run_id


class TestEntries:
    def test_kind_filter_and_newest_limit(self, tmp_path):
        ledger = Ledger(tmp_path)
        for i in range(4):
            ledger.append(LedgerEntry(kind="simulate", wall_seconds=float(i)))
        ledger.append(LedgerEntry(kind="fuzz"))
        sims = ledger.entries(kind="simulate")
        assert [e.wall_seconds for e in sims] == [0.0, 1.0, 2.0, 3.0]
        newest = ledger.entries(kind="simulate", limit=2)
        assert [e.wall_seconds for e in newest] == [2.0, 3.0]

    def test_malformed_and_foreign_lines_skipped(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(LedgerEntry(kind="simulate"))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write("{torn half-li\n")
            handle.write('{"schema": 999, "kind": "simulate"}\n')
            handle.write("\n")
        ledger.append(LedgerEntry(kind="campaign"))
        assert [e.kind for e in ledger.entries()] == ["simulate", "campaign"]

    def test_missing_file_is_empty(self, tmp_path):
        assert Ledger(tmp_path / "nowhere").entries() == []

    def test_find_by_prefix_prefers_newest(self, tmp_path):
        ledger = Ledger(tmp_path)
        old = ledger.append(LedgerEntry(kind="simulate", timestamp=1.0))
        new = ledger.append(LedgerEntry(kind="simulate", timestamp=2.0))
        assert ledger.find(new.run_id[:6]).timestamp == 2.0
        assert ledger.find(old.run_id).timestamp == 1.0
        assert ledger.find("nope") is None


class TestGc:
    def test_keeps_newest_and_reports_removed(self, tmp_path):
        ledger = Ledger(tmp_path)
        for i in range(5):
            ledger.append(LedgerEntry(kind="simulate", wall_seconds=float(i)))
        assert ledger.gc(keep=2) == 3
        assert [e.wall_seconds for e in ledger.entries()] == [3.0, 4.0]
        assert ledger.gc(keep=2) == 0  # idempotent
        assert not ledger.path.with_suffix(".tmp").exists()

    def test_negative_keep_raises(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            Ledger(tmp_path).gc(keep=-1)


class TestDiff:
    def test_scalar_rows_with_deltas(self):
        old = LedgerEntry(kind="campaign", wall_seconds=2.0, cache_hits=0,
                          cell_count=4, instructions_per_second=100.0)
        new = LedgerEntry(kind="campaign", wall_seconds=1.0, cache_hits=4,
                          cell_count=4)
        rows = {row[0]: row for row in diff_entries(old, new)}
        assert rows["wall_seconds"] == ("wall_seconds", 2.0, 1.0, -1.0)
        assert rows["cache_hits"][3] == 4
        assert rows["cache_hit_rate"] == ("cache_hit_rate", 0.0, 1.0, 1.0)


class TestRecordHelpers:
    def test_record_run_with_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("cells_total").inc(2)
        entry = record_run(
            "campaign", wall_seconds=0.5, cache_hits=1, simulated_cells=1,
            cell_count=2, config_hash="abc", snapshot=registry.snapshot(),
            extra={"figure": "fig13"}, root=tmp_path,
        )
        (stored,) = Ledger(tmp_path).entries()
        assert stored.run_id == entry.run_id
        assert stored.config_hash == "abc"
        assert stored.extra == {"figure": "fig13"}
        assert stored.metrics["metrics"]["cells_total"]["kind"] == "counter"
        assert stored.cache_hit_rate == 0.5

    def test_record_profile(self, tmp_path):
        profile = CampaignProfile(wall_seconds=2.0)
        profile.note_cell("a/gcc", 1.0, 0, source="cache")
        profile.note_cell("b/gcc", 1.0, 500)
        entry = record_profile("frontier", profile, root=tmp_path)
        assert entry.kind == "frontier"
        assert entry.cache_hits == 1
        assert entry.simulated_cells == 1
        assert entry.cell_count == 2
        assert entry.instructions_per_second == 250.0
        assert entry.metrics is not None

    def test_git_sha_shape(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40


class TestRecordBench:
    def test_fresh_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        payload = record_bench(path, "repro-x-bench", {"rate": 42})
        stored = json.loads(path.read_text())
        assert stored == payload
        assert stored["bench_schema"] == BENCH_SCHEMA
        assert stored["kind"] == "repro-x-bench"
        assert stored["measured"] == {"rate": 42}
        assert path.read_text().endswith("\n")
        assert not path.with_suffix(".tmp").exists()

    def test_preserves_recorded_block(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({
            "kind": "repro-x-bench",
            "measured": {"rate": 10},
            "recorded": {"min_rate_floor": 5, "note": "hand-curated"},
        }))
        record_bench(path, "repro-x-bench", {"rate": 42})
        stored = json.loads(path.read_text())
        assert stored["measured"] == {"rate": 42}
        assert stored["recorded"] == {"min_rate_floor": 5,
                                      "note": "hand-curated"}

    def test_explicit_recorded_replaces(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_bench(path, "k", {"rate": 1}, recorded={"floor": 0})
        assert json.loads(path.read_text())["recorded"] == {"floor": 0}

    def test_garbage_existing_file_recovered(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("not json{")
        payload = record_bench(path, "k", {"rate": 1})
        assert payload["measured"] == {"rate": 1}
        assert json.loads(path.read_text())["kind"] == "k"
