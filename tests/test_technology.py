"""Tests for repro.technology: process parameters, wires, gates."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.technology import (
    FEATURE_SIZES_UM,
    TECH_018,
    TECH_035,
    TECH_080,
    TECHNOLOGIES,
    GateLibrary,
    Technology,
    WireModel,
    distributed_rc_delay_ps,
    fanout4_chain_delay,
    technology_by_feature_size,
)


class TestTechnologyParams:
    def test_three_studied_technologies(self):
        assert FEATURE_SIZES_UM == (0.8, 0.35, 0.18)

    def test_ordered_largest_feature_first(self):
        sizes = [t.feature_size_um for t in TECHNOLOGIES]
        assert sizes == sorted(sizes, reverse=True)

    def test_lambda_is_half_feature_size(self):
        for tech in TECHNOLOGIES:
            assert tech.lambda_um == pytest.approx(tech.feature_size_um / 2)

    def test_lookup_by_feature_size(self):
        assert technology_by_feature_size(0.18) is TECH_018
        assert technology_by_feature_size(0.35) is TECH_035
        assert technology_by_feature_size(0.8) is TECH_080

    def test_lookup_unknown_feature_size_raises(self):
        with pytest.raises(KeyError, match="0.25"):
            technology_by_feature_size(0.25)

    def test_rc_product_constant_across_technologies(self):
        # The paper's scaling model keeps wire delay per lambda^2 fixed.
        products = {t.rc_per_lambda_sq_ps for t in TECHNOLOGIES}
        assert len(products) == 1

    def test_rc_product_matches_table1(self):
        # 0.5 * RC * 20500^2 must equal Table 1's 184.9 ps.
        rc = TECH_018.rc_per_lambda_sq_ps
        assert 0.5 * rc * 20500.0**2 == pytest.approx(184.9)

    def test_r_times_c_consistent_with_product(self):
        for tech in TECHNOLOGIES:
            product = tech.r_metal_ohm_per_lambda * tech.c_metal_ff_per_lambda
            # R[ohm] * C[fF] = RC in femtoseconds*1e... units: ohm*fF = fs;
            # the stored product is in ps, so divide by 1000.
            assert product / 1000.0 == pytest.approx(tech.rc_per_lambda_sq_ps)

    def test_logic_speed_monotone_in_feature_size(self):
        assert TECH_080.logic_speed > TECH_035.logic_speed > TECH_018.logic_speed == 1.0

    def test_scale_logic_delay(self):
        assert TECH_018.scale_logic_delay(100.0) == pytest.approx(100.0)
        assert TECH_080.scale_logic_delay(100.0) > 400.0

    def test_str_is_name(self):
        assert str(TECH_018) == "0.18um"


class TestWires:
    def test_zero_length_zero_delay(self):
        assert distributed_rc_delay_ps(TECH_018, 0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            distributed_rc_delay_ps(TECH_018, -1.0)

    def test_wire_model_rejects_negative(self):
        with pytest.raises(ValueError):
            WireModel(TECH_018, -5.0)

    def test_quadratic_in_length(self):
        short = distributed_rc_delay_ps(TECH_018, 1000.0)
        long = distributed_rc_delay_ps(TECH_018, 2000.0)
        assert long == pytest.approx(4.0 * short)

    def test_same_across_technologies(self):
        delays = {distributed_rc_delay_ps(t, 30000.0) for t in TECHNOLOGIES}
        assert len(delays) == 1

    def test_wire_model_properties(self):
        wire = WireModel(TECH_018, 10000.0)
        assert wire.resistance_ohm > 0
        assert wire.capacitance_ff > 0
        assert wire.distributed_delay_ps == pytest.approx(
            distributed_rc_delay_ps(TECH_018, 10000.0)
        )

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_delay_non_negative(self, length):
        assert distributed_rc_delay_ps(TECH_018, length) >= 0.0

    @given(
        st.floats(min_value=1.0, max_value=1e5),
        st.floats(min_value=1.0, max_value=1e5),
    )
    def test_delay_monotone_in_length(self, a, b):
        lo, hi = sorted((a, b))
        assert distributed_rc_delay_ps(TECH_018, lo) <= distributed_rc_delay_ps(
            TECH_018, hi
        )


class TestGates:
    def test_tau_scales_with_technology(self):
        taus = [GateLibrary(t).tau_ps for t in TECHNOLOGIES]
        assert taus[0] > taus[1] > taus[2]

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError, match="unknown gate"):
            GateLibrary(TECH_018).gate_delay_ps("xor9")

    def test_non_positive_effort_raises(self):
        with pytest.raises(ValueError, match="positive"):
            GateLibrary(TECH_018).gate_delay_ps("inv", 0.0)

    def test_higher_fanin_is_slower(self):
        lib = GateLibrary(TECH_018)
        assert lib.gate_delay_ps("nand4") > lib.gate_delay_ps("nand2")
        assert lib.gate_delay_ps("nor4") > lib.gate_delay_ps("nor2")

    def test_chain_delay_sums_stages(self):
        lib = GateLibrary(TECH_018)
        chain = lib.chain_delay_ps(["inv", "nand2"])
        assert chain == pytest.approx(
            lib.gate_delay_ps("inv") + lib.gate_delay_ps("nand2")
        )

    def test_fanout4_chain(self):
        assert fanout4_chain_delay(TECH_018, 0) == 0.0
        one = fanout4_chain_delay(TECH_018, 1)
        assert fanout4_chain_delay(TECH_018, 3) == pytest.approx(3 * one)

    def test_fanout4_chain_negative_raises(self):
        with pytest.raises(ValueError):
            fanout4_chain_delay(TECH_018, -1)

    def test_frozen_dataclass(self):
        with pytest.raises(Exception):
            TECH_018.name = "other"  # type: ignore[misc]

    def test_technology_equality_by_value(self):
        clone = Technology(name="0.18um", feature_size_um=0.18, logic_speed=1.0)
        assert clone == TECH_018
