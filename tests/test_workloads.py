"""Tests for the workload kernels and the synthetic trace generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import OpClass
from repro.workloads import (
    WORKLOAD_NAMES,
    SyntheticConfig,
    all_traces,
    build_program,
    get_trace,
    synthetic_trace,
)

TRACE_LENGTH = 5_000


class TestKernelBasics:
    def test_seven_paper_benchmarks(self):
        assert WORKLOAD_NAMES == (
            "compress", "gcc", "go", "li", "m88ksim", "perl", "vortex",
        )

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_program("spice")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_kernel_assembles(self, name):
        program = build_program(name)
        assert len(program) > 20

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_kernel_fills_any_cap(self, name):
        # Kernels loop indefinitely; the cap bounds the run.
        trace = get_trace(name, TRACE_LENGTH)
        assert len(trace) == TRACE_LENGTH
        assert not trace.halted

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_kernel_deterministic(self, name):
        first = get_trace(name, 2_000)
        # Bypass the cache: rebuild and rerun.
        from repro.isa import run_to_trace

        second = run_to_trace(build_program(name), max_instructions=2_000)
        assert [i.pc for i in first[:2_000]] == [i.pc for i in second]
        assert [i.taken for i in first[:2_000]] == [i.taken for i in second]

    def test_trace_cache_returns_same_object(self):
        assert get_trace("compress", 1_000) is get_trace("compress", 1_000)

    def test_all_traces_ordered(self):
        traces = all_traces(1_000)
        assert tuple(traces) == WORKLOAD_NAMES


class TestKernelCharacter:
    """The kernels must exhibit their namesakes' documented character."""

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_realistic_branch_fraction(self, name):
        trace = get_trace(name, TRACE_LENGTH)
        assert 0.04 < trace.branch_fraction() < 0.35

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_realistic_load_fraction(self, name):
        trace = get_trace(name, TRACE_LENGTH)
        assert 0.05 < trace.load_fraction() < 0.40

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_has_stores(self, name):
        trace = get_trace(name, TRACE_LENGTH)
        assert any(inst.is_store for inst in trace)

    @staticmethod
    def _windowed_ilp(trace, window=128):
        """Dataflow ILP within an in-flight window of ``window`` insts.

        Unit latency, infinite functional units, but parallelism can
        only be found inside consecutive window-sized chunks -- the
        resource a real 128-in-flight machine has.
        """
        total_levels = 0
        for start in range(0, len(trace), window):
            chunk = trace[start : start + window]
            level_of_reg: dict[int, int] = {}
            max_level = 0
            for inst in chunk:
                level = 1 + max(
                    (level_of_reg.get(s, 0) for s in inst.srcs), default=0
                )
                if inst.dest is not None:
                    level_of_reg[inst.dest] = level
                max_level = max(max_level, level)
            total_levels += max_level
        return len(trace) / total_levels if total_levels else float("inf")

    def test_li_is_pointer_chasing(self):
        # li must have the longest serial dependence chains (lowest
        # window-limited dataflow ILP) of the suite -- cdr loads feed
        # the next address computation.
        ilp = {
            name: self._windowed_ilp(get_trace(name, TRACE_LENGTH))
            for name in WORKLOAD_NAMES
        }
        assert ilp["li"] < 5.0
        assert ilp["li"] == min(ilp.values())

    def test_m88ksim_and_gcc_use_indirect_jumps(self):
        for name in ("m88ksim", "gcc"):
            trace = get_trace(name, TRACE_LENGTH)
            indirect = [i for i in trace if i.opcode in ("jr", "jalr")]
            assert indirect, f"{name} should dispatch indirectly"

    def test_vortex_is_call_heavy(self):
        trace = get_trace("vortex", TRACE_LENGTH)
        calls = sum(1 for i in trace if i.opcode in ("jal", "jalr"))
        assert calls / len(trace) > 0.02

    def test_go_is_branchy(self):
        trace = get_trace("go", TRACE_LENGTH)
        assert trace.branch_fraction() > 0.15

    def test_compress_stores_output(self):
        trace = get_trace("compress", TRACE_LENGTH)
        stores = [i for i in trace if i.is_store]
        assert len({i.mem_addr for i in stores}) > 10

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_memory_addresses_recorded(self, name):
        trace = get_trace(name, TRACE_LENGTH)
        for inst in trace:
            if inst.is_load or inst.is_store:
                assert inst.mem_addr is not None
            else:
                assert inst.mem_addr is None

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_pc_chain_is_consistent(self, name):
        trace = get_trace(name, TRACE_LENGTH)
        for prev, nxt in zip(trace, trace[1:]):
            assert prev.next_pc == nxt.pc


class TestSyntheticGenerator:
    def test_length(self):
        trace = synthetic_trace(SyntheticConfig(length=500))
        assert len(trace) == 500

    def test_deterministic_per_seed(self):
        config = SyntheticConfig(length=1_000, seed=7)
        a = synthetic_trace(config)
        b = synthetic_trace(config)
        assert [i.pc for i in a] == [i.pc for i in b]
        assert [i.taken for i in a] == [i.taken for i in b]

    def test_different_seeds_differ(self):
        a = synthetic_trace(SyntheticConfig(length=1_000, seed=1))
        b = synthetic_trace(SyntheticConfig(length=1_000, seed=2))
        assert [i.pc for i in a] != [i.pc for i in b]

    def test_class_mix_tracks_config(self):
        config = SyntheticConfig(
            length=20_000, load_fraction=0.3, store_fraction=0.1, branch_fraction=0.1
        )
        trace = synthetic_trace(config)
        assert trace.load_fraction() == pytest.approx(0.3, abs=0.12)
        assert trace.branch_fraction() == pytest.approx(0.1, abs=0.1)

    def test_loop_branch_always_closes(self):
        config = SyntheticConfig(length=2_000, body_size=16)
        trace = synthetic_trace(config)
        closers = [i for i in trace if i.pc == 15]
        assert closers
        assert all(i.taken and i.next_pc == 0 for i in closers)

    def test_dependences_reference_real_registers(self):
        trace = synthetic_trace(SyntheticConfig(length=2_000))
        produced = set()
        for inst in trace:
            for src in inst.srcs:
                assert src in produced or inst.seq < 64
            if inst.dest is not None:
                produced.add(inst.dest)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(length=-1)
        with pytest.raises(ValueError):
            SyntheticConfig(body_size=1)
        with pytest.raises(ValueError):
            SyntheticConfig(load_fraction=0.8, store_fraction=0.3)
        with pytest.raises(ValueError):
            SyntheticConfig(branch_taken_probability=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(mean_dependence_distance=0.5)
        with pytest.raises(ValueError):
            SyntheticConfig(memory_words=0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2_000),
        st.integers(min_value=2, max_value=128),
        st.integers(min_value=1, max_value=1_000),
    )
    def test_any_config_produces_wellformed_trace(self, length, body, seed):
        trace = synthetic_trace(
            SyntheticConfig(length=length, body_size=body, seed=seed)
        )
        assert len(trace) == length
        for inst in trace:
            assert 0 <= inst.pc < body
            assert 0 <= inst.next_pc < body
            if inst.op_class is OpClass.STORE:
                assert inst.dest is None
