"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.delay.bypass
import repro.delay.rename
import repro.delay.rename_cam
import repro.delay.regfile
import repro.delay.reservation
import repro.delay.select
import repro.delay.wakeup
import repro.delay.cache_access

MODULES = [
    repro.delay.bypass,
    repro.delay.rename,
    repro.delay.rename_cam,
    repro.delay.regfile,
    repro.delay.reservation,
    repro.delay.select,
    repro.delay.wakeup,
    repro.delay.cache_access,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
