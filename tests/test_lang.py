"""Tests for the Mini compiler: lexer, parser, codegen, and
differential execution against a Python reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Emulator
from repro.lang import CompileError, compile_source, compile_to_assembly, parse, tokenize
from repro.lang import ast_nodes as ast


def run_main(source, max_instructions=500_000):
    emulator = Emulator(compile_source(source))
    emulator.run(max_instructions=max_instructions)
    assert emulator.halted, "program did not halt"
    return emulator.int_regs[2]


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("func main() { return 1+2; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert kinds[-1] == "eof"

    def test_comments_skipped(self):
        tokens = tokenize("var x; # a comment\nvar y;")
        assert sum(1 for t in tokens if t.kind == "keyword") == 2

    def test_line_numbers(self):
        tokens = tokenize("var x;\nvar y;")
        assert tokens[0].line == 1
        assert tokens[3].line == 2

    def test_multichar_operators(self):
        texts = [t.text for t in tokenize("a << b >= c != d")]
        assert "<<" in texts
        assert ">=" in texts
        assert "!=" in texts

    def test_hex_numbers(self):
        tokens = tokenize("x = 0x1F;")
        assert any(t.text == "0x1F" for t in tokens)

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("x = @;")


class TestParser:
    def test_module_shape(self):
        module = parse("var g; array a[8]; func main() { return 0; }")
        assert len(module.globals) == 1
        assert module.arrays[0].size == 8
        assert module.functions[0].name == "main"

    def test_precedence(self):
        module = parse("func main() { return 1 + 2 * 3; }")
        expr = module.functions[0].body[0].value
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_else_if_chains(self):
        module = parse(
            "func main() { if (1) { return 1; } else if (2) { return 2; } "
            "else { return 3; } }"
        )
        outer = module.functions[0].body[0]
        assert isinstance(outer.else_body[0], ast.If)

    def test_parse_errors(self):
        for source, pattern in [
            ("func main() { return 1 }", "expected"),
            ("func main( { }", "expected"),
            ("banana;", "expected declaration"),
            ("func f(a, b, c, d, e) { }", "max 4"),
            ("func f(a, a) { }", "duplicate parameter"),
            ("array a[0];", "out of range"),
            ("func main() { 1 = 2; }", "assignment target"),
        ]:
            with pytest.raises(CompileError, match=pattern):
                parse(source)

    def test_error_carries_line(self):
        with pytest.raises(CompileError, match="line 2"):
            parse("var x;\nbanana;")


class TestSemantics:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_to_assembly("func main() { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            compile_to_assembly("func main() { return nope(); }")

    def test_undefined_array(self):
        with pytest.raises(CompileError, match="undefined array"):
            compile_to_assembly("func main() { return a[0]; }")

    def test_arity_checked(self):
        with pytest.raises(CompileError, match="expects 2 arguments"):
            compile_to_assembly(
                "func f(a, b) { return a; } func main() { return f(1); }"
            )

    def test_main_required(self):
        with pytest.raises(CompileError, match="'main'"):
            compile_to_assembly("func helper() { return 1; }")

    def test_main_takes_no_params(self):
        with pytest.raises(CompileError, match="no parameters"):
            compile_to_assembly("func main(x) { return x; }")

    def test_duplicate_global(self):
        with pytest.raises(CompileError, match="duplicate global"):
            compile_to_assembly("var x; var x; func main() { return 0; }")

    def test_duplicate_local(self):
        with pytest.raises(CompileError, match="duplicate local"):
            compile_to_assembly("func main() { var x; var x; return 0; }")


class TestExecution:
    def test_arithmetic(self):
        assert run_main("func main() { return 2 + 3 * 4 - 6 / 2; }") == 11

    def test_truncating_division(self):
        assert run_main("func main() { return (0 - 7) / 2; }") == -3
        assert run_main("func main() { return (0 - 7) % 2; }") == -1

    def test_comparisons(self):
        source = """
        func main() {
            return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1);
        }
        """
        assert run_main(source) == 4

    def test_shifts_and_bitwise(self):
        assert run_main("func main() { return (1 << 5) | (255 & 12) ^ 1; }") == 45

    def test_while_loop(self):
        source = """
        func main() {
            var i; var s;
            i = 0; s = 0;
            while (i < 10) { s = s + i; i = i + 1; }
            return s;
        }
        """
        assert run_main(source) == 45

    def test_if_else(self):
        source = """
        func main() {
            var x;
            if (3 > 2) { x = 10; } else { x = 20; }
            if (3 < 2) { x = x + 1; } else { x = x + 2; }
            return x;
        }
        """
        assert run_main(source) == 12

    def test_globals_persist_across_calls(self):
        source = """
        var counter;
        func bump() { counter = counter + 1; return 0; }
        func main() { bump(); bump(); bump(); return counter; }
        """
        assert run_main(source) == 3

    def test_arrays(self):
        source = """
        array a[16];
        func main() {
            var i;
            i = 0;
            while (i < 16) { a[i] = i * 2; i = i + 1; }
            return a[3] + a[15];
        }
        """
        assert run_main(source) == 36

    def test_recursion(self):
        source = """
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main() { return fib(12); }
        """
        assert run_main(source) == 144

    def test_gcd(self):
        source = """
        func gcd(a, b) {
            while (b != 0) { var t; t = b; b = a % b; a = t; }
            return a;
        }
        func main() { return gcd(1071, 462); }
        """
        assert run_main(source) == 21

    def test_call_inside_expression_preserves_temps(self):
        # The call's spill/restore must keep the live temporary (100).
        source = """
        func id(x) { return x; }
        func main() { return 100 + id(23); }
        """
        assert run_main(source) == 123

    def test_nested_calls(self):
        source = """
        func add(a, b) { return a + b; }
        func main() { return add(add(1, 2), add(3, add(4, 5))); }
        """
        assert run_main(source) == 15

    def test_four_arguments(self):
        source = """
        func weave(a, b, c, d) { return a * 1000 + b * 100 + c * 10 + d; }
        func main() { return weave(1, 2, 3, 4); }
        """
        assert run_main(source) == 1234

    def test_falling_off_end_returns_zero(self):
        assert run_main("var g; func main() { g = 7; }") == 0

    def test_unary_minus(self):
        assert run_main("func main() { return -5 + 8; }") == 3

    def test_logical_and_or(self):
        source = """
        func main() {
            return (1 && 2) * 1000 + (0 && 2) * 100 + (0 || 3) * 10 + (0 || 0);
        }
        """
        assert run_main(source) == 1010

    def test_short_circuit_skips_side_effects(self):
        source = """
        var touched;
        func touch() { touched = touched + 1; return 1; }
        func main() {
            var a;
            a = 0 && touch();   # touch must NOT run
            a = 1 || touch();   # touch must NOT run
            a = 1 && touch();   # touch runs
            return touched;
        }
        """
        assert run_main(source) == 1

    def test_logical_not(self):
        assert run_main("func main() { return !0 * 10 + !5; }") == 10

    def test_break_and_continue(self):
        source = """
        func main() {
            var i; var s;
            i = 0; s = 0;
            while (1) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                s = s + i;          # odd numbers 1..9
            }
            return s;
        }
        """
        assert run_main(source) == 25

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError, match="outside a loop"):
            compile_to_assembly("func main() { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(CompileError, match="outside a loop"):
            compile_to_assembly("func main() { continue; }")

    def test_precedence_of_logical_operators(self):
        # && binds tighter than ||, both looser than comparison.
        assert run_main("func main() { return 1 || 0 && 0; }") == 1
        assert run_main("func main() { return (1 || 0) && 0; }") == 0
        assert run_main("func main() { return 2 < 3 && 3 < 2 || 1; }") == 1

    def test_sieve_of_eratosthenes(self):
        source = """
        array sieve[100];
        func main() {
            var i; var j; var count;
            i = 2;
            while (i < 100) {
                if (sieve[i] == 0) {
                    j = i + i;
                    while (j < 100) { sieve[j] = 1; j = j + i; }
                }
                i = i + 1;
            }
            count = 0; i = 2;
            while (i < 100) {
                if (sieve[i] == 0) { count = count + 1; }
                i = i + 1;
            }
            return count;
        }
        """
        assert run_main(source) == 25  # primes below 100


def _c_eval(node):
    """Reference evaluation with C/ISA semantics (truncating division)."""
    if isinstance(node, int):
        return node
    op, left, right = node
    a, b = _c_eval(left), _c_eval(right)
    if op == "/":
        return int(a / b) if b else 0
    if op == "%":
        return a - int(a / b) * b if b else 0
    return {
        "+": a + b, "-": a - b, "*": a * b,
        "&": a & b, "|": a | b, "^": a ^ b,
    }[op]


def _render(node):
    if isinstance(node, int):
        return f"({node})" if node < 0 else str(node)
    op, left, right = node
    return f"({_render(left)} {op} {_render(right)})"


_EXPR = st.recursive(
    st.integers(min_value=-100, max_value=100),
    lambda children: st.tuples(
        st.sampled_from("+-*/%&|^"), children, children
    ),
    max_leaves=12,
)


@settings(max_examples=40, deadline=None)
@given(_EXPR)
def test_differential_expressions(tree):
    """Property: compiled expression evaluation matches a C-semantics
    reference, for arbitrary expression trees."""
    expected = _c_eval(tree)
    if not -(2**31) <= expected < 2**31:
        return  # stay inside 32-bit behaviour
    # Intermediate overflow can also wrap; rule it out conservatively.
    def bounded(node):
        if isinstance(node, int):
            return True
        value = _c_eval(node)
        return -(2**31) < value < 2**31 and bounded(node[1]) and bounded(node[2])

    if not bounded(tree):
        return
    result = run_main(f"func main() {{ return {_render(tree)}; }}")
    assert result == expected
