"""Tests for the functional emulator and trace generation."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Emulator, EmulationError, OpClass, assemble, run_to_trace


def run(source, max_instructions=100_000):
    emulator = Emulator(assemble(source))
    trace = emulator.run(max_instructions)
    return emulator, trace


class TestArithmetic:
    def test_addu_wraps_32_bits(self):
        emulator, _ = run("li r1, 0x7FFFFFFF\naddiu r2, r1, 1\nhalt\n")
        assert emulator.int_regs[2] == -(2**31)

    def test_subu(self):
        emulator, _ = run("li r1, 3\nli r2, 10\nsubu r3, r1, r2\nhalt\n")
        assert emulator.int_regs[3] == -7

    def test_logic_ops(self):
        emulator, _ = run(
            """
            li r1, 0b1100
            li r2, 0b1010
            and r3, r1, r2
            or r4, r1, r2
            xor r5, r1, r2
            nor r6, r1, r2
            halt
            """
        )
        assert emulator.int_regs[3] == 0b1000
        assert emulator.int_regs[4] == 0b1110
        assert emulator.int_regs[5] == 0b0110
        assert emulator.int_regs[6] == ~0b1110

    def test_shifts(self):
        emulator, _ = run(
            """
            li r1, -8
            sll r2, r1, 1
            srl r3, r1, 1
            sra r4, r1, 1
            li r5, 2
            sllv r6, r1, r5
            halt
            """
        )
        assert emulator.int_regs[2] == -16
        assert emulator.int_regs[3] == 0x7FFFFFFC
        assert emulator.int_regs[4] == -4
        assert emulator.int_regs[6] == -32

    def test_set_less_than(self):
        emulator, _ = run(
            """
            li r1, -1
            li r2, 1
            slt r3, r1, r2
            sltu r4, r1, r2
            slti r5, r1, 0
            halt
            """
        )
        assert emulator.int_regs[3] == 1
        assert emulator.int_regs[4] == 0  # 0xFFFFFFFF unsigned > 1
        assert emulator.int_regs[5] == 1

    def test_lui(self):
        emulator, _ = run("lui r1, 0x1234\nhalt\n")
        assert emulator.int_regs[1] == 0x12340000

    def test_mult_div_rem(self):
        emulator, _ = run(
            """
            li r1, -7
            li r2, 2
            mult r3, r1, r2
            div r4, r1, r2
            rem r5, r1, r2
            halt
            """
        )
        assert emulator.int_regs[3] == -14
        assert emulator.int_regs[4] == -3  # truncation toward zero
        assert emulator.int_regs[5] == -1

    def test_divide_by_zero_yields_zero(self):
        emulator, _ = run("li r1, 5\nli r2, 0\ndiv r3, r1, r2\nrem r4, r1, r2\nhalt\n")
        assert emulator.int_regs[3] == 0
        assert emulator.int_regs[4] == 0

    def test_register_zero_is_hardwired(self):
        emulator, _ = run("li r0, 99\naddu r1, r0, r0\nhalt\n")
        assert emulator.int_regs[0] == 0
        assert emulator.int_regs[1] == 0


class TestMemory:
    def test_word_store_load(self):
        emulator, _ = run(
            """
            .data
            buf: .space 64
            .text
            main: la r1, buf
            li r2, -123456
            sw r2, 8(r1)
            lw r3, 8(r1)
            halt
            """
        )
        assert emulator.int_regs[3] == -123456

    def test_byte_sign_extension(self):
        emulator, _ = run(
            """
            .data
            buf: .space 4
            .text
            main: la r1, buf
            li r2, 0xFF
            sb r2, 0(r1)
            lb r3, 0(r1)
            lbu r4, 0(r1)
            halt
            """
        )
        assert emulator.int_regs[3] == -1
        assert emulator.int_regs[4] == 255

    def test_halfword(self):
        emulator, _ = run(
            """
            .data
            buf: .space 4
            .text
            main: la r1, buf
            li r2, 0x8000
            sh r2, 0(r1)
            lh r3, 0(r1)
            lhu r4, 0(r1)
            halt
            """
        )
        assert emulator.int_regs[3] == -32768
        assert emulator.int_regs[4] == 32768

    def test_uninitialised_memory_reads_zero(self):
        emulator, _ = run("li r1, 0x5000\nlw r2, 0(r1)\nhalt\n")
        assert emulator.int_regs[2] == 0

    def test_data_image_visible(self):
        emulator, _ = run(
            """
            .data
            x: .word 42
            .text
            main: la r1, x
            lw r2, 0(r1)
            halt
            """
        )
        assert emulator.int_regs[2] == 42

    def test_trace_records_addresses(self):
        _, trace = run(
            """
            .data
            x: .word 1
            .text
            main: la r1, x
            lw r2, 0(r1)
            sw r2, 4(r1)
            halt
            """
        )
        load = next(i for i in trace if i.is_load)
        store = next(i for i in trace if i.is_store)
        assert store.mem_addr == load.mem_addr + 4


class TestControlFlow:
    def test_loop_count(self):
        emulator, trace = run(
            """
            main: li r1, 0
            li r2, 10
            loop: addiu r1, r1, 1
            blt r1, r2, loop
            halt
            """
        )
        assert emulator.int_regs[1] == 10
        branches = [i for i in trace if i.is_branch]
        assert len(branches) == 10
        assert sum(i.taken for i in branches) == 9

    def test_all_branch_ops(self):
        emulator, _ = run(
            """
            main: li r1, -5
            li r2, 5
            li r9, 0
            beq r1, r1, a
            halt
            a: bne r1, r2, b
            halt
            b: blez r1, c
            halt
            c: bgtz r2, d
            halt
            d: bltz r1, e
            halt
            e: bgez r2, f
            halt
            f: blt r1, r2, g
            halt
            g: bge r2, r1, h
            halt
            h: ble r1, r2, i
            halt
            i: bgt r2, r1, done
            halt
            done: li r9, 1
            halt
            """
        )
        assert emulator.int_regs[9] == 1

    def test_call_and_return(self):
        emulator, trace = run(
            """
            main: li r4, 7
            jal double
            move r5, r2
            halt
            double: addu r2, r4, r4
            jr $ra
            """
        )
        assert emulator.int_regs[5] == 14
        jumps = [i for i in trace if i.is_uncond]
        assert len(jumps) == 2
        assert all(i.taken for i in jumps)

    def test_indirect_jump_through_table(self):
        emulator, _ = run(
            """
            .data
            table: .space 8
            .text
            main: la r1, table
            li r2, case1
            sw r2, 4(r1)
            lw r3, 4(r1)
            jr r3
            halt
            case1: li r9, 111
            halt
            """
        )
        assert emulator.int_regs[9] == 111

    def test_bad_indirect_target_raises(self):
        emulator = Emulator(assemble("li r1, 999\njr r1\nhalt\n"))
        with pytest.raises(EmulationError, match="outside text segment"):
            emulator.run()

    def test_pc_off_end_raises(self):
        emulator = Emulator(assemble("nop\n"))
        with pytest.raises(EmulationError, match="outside text segment"):
            emulator.run()

    def test_instruction_cap(self):
        _, trace = run("main: b main\n", max_instructions=50)
        assert len(trace) == 50
        assert not trace.halted

    def test_negative_cap_rejected(self):
        emulator = Emulator(assemble("halt\n"))
        with pytest.raises(ValueError):
            emulator.run(max_instructions=-1)


class TestFloatingPoint:
    def test_fp_arithmetic(self):
        emulator, _ = run(
            """
            li r1, 3
            cvt.s.w f1, r1
            li r2, 4
            cvt.s.w f2, r2
            add.s f3, f1, f2
            mul.s f4, f1, f2
            div.s f5, f2, f1
            sub.s f6, f2, f1
            cvt.w.s r3, f3
            halt
            """
        )
        assert emulator.fp_regs[3] == pytest.approx(7.0)
        assert emulator.fp_regs[4] == pytest.approx(12.0)
        assert emulator.fp_regs[5] == pytest.approx(4 / 3)
        assert emulator.fp_regs[6] == pytest.approx(1.0)
        assert emulator.int_regs[3] == 7

    def test_fp_div_by_zero_yields_zero(self):
        emulator, _ = run("cvt.s.w f1, r0\nli r1, 1\ncvt.s.w f2, r1\ndiv.s f3, f2, f1\nhalt\n")
        assert emulator.fp_regs[3] == 0.0

    def test_fp_memory_roundtrip(self):
        emulator, _ = run(
            """
            .data
            buf: .space 8
            .text
            main: la r1, buf
            li r2, 5
            cvt.s.w f1, r2
            s.s f1, 0(r1)
            l.s f2, 0(r1)
            halt
            """
        )
        assert emulator.fp_regs[2] == pytest.approx(5.0)


class TestTraceRecords:
    def test_sequential_numbering(self):
        _, trace = run("nop\nnop\nnop\nhalt\n")
        assert [i.seq for i in trace] == [0, 1, 2]

    def test_r0_excluded_from_dependences(self):
        _, trace = run("addu r1, r0, r0\nhalt\n")
        assert trace[0].srcs == ()
        assert trace[0].dest == 1

    def test_write_to_r0_has_no_dest(self):
        _, trace = run("addu r0, r1, r2\nhalt\n")
        assert trace[0].dest is None

    def test_next_pc_chains(self):
        _, trace = run("main: li r1, 1\nb skip\nnop\nskip: halt\n")
        assert trace[0].next_pc == 1
        assert trace[1].next_pc == 3

    def test_class_counts_and_fractions(self):
        _, trace = run(
            """
            .data
            b: .space 4
            .text
            main: la r1, b
            lw r2, 0(r1)
            beq r2, r0, out
            nop
            out: halt
            """
        )
        counts = trace.class_counts()
        assert counts[OpClass.LOAD] == 1
        assert counts[OpClass.BRANCH] == 1
        assert 0 < trace.branch_fraction() < 1
        assert 0 < trace.load_fraction() < 1

    def test_run_to_trace_names(self):
        trace = run_to_trace(assemble("halt\n"), name="demo")
        assert trace.name == "demo"
        assert len(trace) == 0
        assert trace.halted

    def test_empty_trace_fractions(self):
        trace = run_to_trace(assemble("halt\n"))
        assert trace.branch_fraction() == 0.0
        assert trace.load_fraction() == 0.0


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20))
def test_emulated_sum_matches_python(values):
    """Property: an assembly summation loop agrees with Python's sum."""
    words = ", ".join(str(v) for v in values)
    source = f"""
        .data
        table: .word {words}
        .text
        main: li r1, 0
        li r2, 0
        la r3, table
        li r6, {len(values)}
        loop: sll r4, r2, 2
        addu r4, r4, r3
        lw r5, 0(r4)
        addu r1, r1, r5
        addiu r2, r2, 1
        blt r2, r6, loop
        halt
    """
    emulator = Emulator(assemble(source))
    emulator.run()
    assert emulator.int_regs[1] == sum(values)


@given(st.integers(min_value=0, max_value=30))
def test_fibonacci_property(n):
    """Property: iterative Fibonacci in assembly matches Python."""
    source = f"""
        main: li r1, 0
        li r2, 1
        li r3, {n}
        beq r3, r0, done
        loop: addu r4, r1, r2
        move r1, r2
        move r2, r4
        addiu r3, r3, -1
        bgtz r3, loop
        done: halt
    """
    emulator = Emulator(assemble(source))
    emulator.run()
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    assert emulator.int_regs[1] == a
