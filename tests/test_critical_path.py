"""The config-derived clock layer: registry, golden pins, accounting.

Pins the pre-refactor numeric outputs (Table 2 rows, the Section 5.5
clock ratio, Table 4 reservation delays) at every technology node, and
asserts the structural properties of :mod:`repro.delay.critical_path`:
every registered machine shape yields a finite critical path at every
technology, bypass never bounds the clock, and the thin consumers
(frontier, summary) agree with the layer exactly.
"""

import pytest

from repro.core.frontier import conventional_clock_ps, dependence_clock_ps
from repro.core.machines import MACHINE_REGISTRY, machine_registry
from repro.delay.critical_path import (
    DELAY_MODEL_REGISTRY,
    CriticalPath,
    StructureDelay,
    bypass_ps,
    clock_ps,
    critical_path,
    fifo_window_logic_ps,
    rename_ps,
    window_logic_ps,
)
from repro.delay.summary import (
    clock_ratio_dependence_based,
    overall_delays,
)
from repro.technology import TECH_018, TECH_035, TECH_080, TECHNOLOGIES

#: Golden Table 2 numbers (model outputs, ps) -- the pre-refactor
#: values every later refactor must preserve:
#: tech -> (issue_width, window) -> (rename, wakeup+select, bypass).
TABLE2_PS = {
    TECH_080: {
        (4, 32): (1577.9, 2902.8, 184.9),
        (8, 64): (1710.5, 3369.3, 1056.4),
    },
    TECH_035: {
        (4, 32): (627.2, 1247.5, 184.9),
        (8, 64): (726.6, 1484.7, 1056.4),
    },
    TECH_018: {
        (4, 32): (351.0, 577.9, 184.9),
        (8, 64): (427.9, 724.0, 1056.4),
    },
}

#: Section 5.5 ratio f_dep / f_window per technology (golden).
CLOCK_RATIO = {TECH_080: 1.1607, TECH_035: 1.1901, TECH_018: 1.2529}


class TestGoldenPins:
    @pytest.mark.parametrize("tech", TECHNOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("point", [(4, 32), (8, 64)])
    def test_table2_row_via_scalar_helpers(self, tech, point):
        issue_width, window = point
        rename, window_logic, bypass = TABLE2_PS[tech][point]
        assert rename_ps(tech, issue_width) == pytest.approx(rename, abs=0.05)
        assert window_logic_ps(tech, issue_width, window) == pytest.approx(
            window_logic, abs=0.05
        )
        assert bypass_ps(tech, issue_width) == pytest.approx(bypass, abs=0.05)

    @pytest.mark.parametrize("tech", TECHNOLOGIES, ids=lambda t: t.name)
    def test_summary_agrees_with_layer(self, tech):
        for (issue_width, window), row in TABLE2_PS[tech].items():
            summary = overall_delays(tech, issue_width, window)
            assert summary.rename_ps == pytest.approx(row[0], abs=0.05)
            assert summary.window_logic_ps == pytest.approx(row[1], abs=0.05)
            assert summary.bypass_ps == pytest.approx(row[2], abs=0.05)

    @pytest.mark.parametrize("tech", TECHNOLOGIES, ids=lambda t: t.name)
    def test_section_5_5_clock_ratio(self, tech):
        assert clock_ratio_dependence_based(tech) == pytest.approx(
            CLOCK_RATIO[tech], abs=5e-4
        )

    def test_baseline_clock_is_table2_window_logic(self):
        config = MACHINE_REGISTRY["baseline"]()
        assert clock_ps(config, TECH_018) == pytest.approx(724.0, abs=0.05)

    def test_table4_reservation_window_logic(self):
        # Table 4 wakeup plus a selection tree over the FIFO heads; the
        # tag space is the machine's in-flight limit (128).
        fifo = fifo_window_logic_ps(TECH_018, 8, 128, 8)
        dependence = MACHINE_REGISTRY["dependence"]()
        path = critical_path(dependence, TECH_018)
        window = [s for s in path.structures if s.structure == "window"]
        assert len(window) == 1
        assert window[0].delay_ps == pytest.approx(fifo, abs=1e-9)
        assert fifo < window_logic_ps(TECH_018, 8, 64)


class TestRegistryCoverage:
    @pytest.mark.parametrize("tech", TECHNOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("shape", sorted(MACHINE_REGISTRY))
    def test_every_shape_has_finite_critical_path(self, shape, tech):
        config = machine_registry()[shape]
        path = critical_path(config, tech)
        assert isinstance(path, CriticalPath)
        assert path.clock_ps > 0.0
        assert path.critical_path_ps >= path.clock_ps
        assert path.frequency_ghz > 0.0
        assert all(s.delay_ps > 0.0 for s in path.structures)

    def test_registry_covers_all_studied_structures(self):
        assert list(DELAY_MODEL_REGISTRY) == [
            "rename", "window", "bypass", "regfile", "cache",
        ]

    def test_clustered_machines_get_per_cluster_entries(self):
        config = MACHINE_REGISTRY["clustered_windows"]()
        path = critical_path(config, TECH_018)
        windows = [s for s in path.structures if s.structure == "window"]
        bypasses = [s for s in path.structures if s.structure == "bypass"]
        assert len(windows) == len(config.clusters) == 2
        assert len(bypasses) == 2

    def test_custom_builder_extends_the_path(self):
        from repro.delay.critical_path import delay_model

        @delay_model("always-slow")
        def _slow(config, tech):
            return (
                StructureDelay(
                    structure="always-slow",
                    label="synthetic bottleneck",
                    delay_ps=1e6,
                    atomic=False,
                    clock_bounding=True,
                ),
            )

        try:
            path = critical_path(MACHINE_REGISTRY["baseline"](), TECH_018)
            assert path.clock_ps == pytest.approx(1e6)
            assert path.bounding_structure.label == "synthetic bottleneck"
        finally:
            del DELAY_MODEL_REGISTRY["always-slow"]


class TestStrategyShapePins:
    """Clock pins for the post-reference strategy shapes.

    ``load_tracking`` swaps the CAM wakeup for a ready-time RAM table
    (Diavastos & Carlson), so its clock must land strictly between the
    conventional window and the FIFO dependence scheme.
    ``ports_limited`` only constrains register-file ports -- a
    structure that is pipelined and never clock-bounding -- so its
    clock is byte-identical to the baseline's.
    """

    #: tech -> load_delay_tracking window-logic clock (8-way/64).
    LDT_CLOCK_PS = {TECH_080: 3131.5, TECH_035: 1205.8, TECH_018: 611.7}

    @pytest.mark.parametrize("tech", TECHNOLOGIES, ids=lambda t: t.name)
    def test_load_tracking_clock_pinned(self, tech):
        config = MACHINE_REGISTRY["load_tracking"]()
        assert clock_ps(config, tech) == pytest.approx(
            self.LDT_CLOCK_PS[tech], abs=0.05
        )

    @pytest.mark.parametrize("tech", TECHNOLOGIES, ids=lambda t: t.name)
    def test_load_tracking_between_window_and_fifo(self, tech):
        ldt = clock_ps(MACHINE_REGISTRY["load_tracking"](), tech)
        conventional = clock_ps(MACHINE_REGISTRY["baseline"](), tech)
        fifo = clock_ps(MACHINE_REGISTRY["dependence"](), tech)
        assert fifo < ldt < conventional

    @pytest.mark.parametrize("tech", TECHNOLOGIES, ids=lambda t: t.name)
    def test_ports_limited_clock_equals_baseline(self, tech):
        ports = clock_ps(MACHINE_REGISTRY["ports_limited"](), tech)
        baseline = clock_ps(MACHINE_REGISTRY["baseline"](), tech)
        assert ports == pytest.approx(baseline, abs=1e-9)

    def test_ports_limited_regfile_shrinks_with_port_budget(self):
        # Halving the read ports must shrink the (non-bounding)
        # regfile structure delay while the clock stays put.
        wide = critical_path(MACHINE_REGISTRY["ports_limited"](), TECH_018)
        narrow = critical_path(
            MACHINE_REGISTRY["ports_limited"](read_ports=2), TECH_018
        )
        wide_rf = [s for s in wide.structures if s.structure == "regfile"]
        narrow_rf = [s for s in narrow.structures if s.structure == "regfile"]
        assert narrow_rf[0].delay_ps < wide_rf[0].delay_ps
        assert narrow.clock_ps == pytest.approx(wide.clock_ps)

    def test_load_tracking_window_label_names_ready_time_logic(self):
        path = critical_path(MACHINE_REGISTRY["load_tracking"](), TECH_018)
        windows = [s for s in path.structures if s.structure == "window"]
        assert len(windows) == 1
        assert "ready-time" in windows[0].label

    def test_strategy_name_tuples_match_registries(self):
        from repro.uarch.config import REGFILE_NAMES, SCHEDULER_NAMES
        from repro.uarch.regfile_model import REGFILE_REGISTRY
        from repro.uarch.scheduler import SCHEDULER_REGISTRY

        assert tuple(SCHEDULER_REGISTRY) == SCHEDULER_NAMES
        assert tuple(REGFILE_REGISTRY) == REGFILE_NAMES


class TestAccounting:
    def test_bypass_never_bounds_the_clock(self):
        # At 0.8 um the baseline's bypass (1056 ps there too, it is
        # technology-invariant) is still excluded from the bound.
        config = MACHINE_REGISTRY["baseline"]()
        for tech in TECHNOLOGIES:
            path = critical_path(config, tech)
            assert path.bounding_structure.structure != "bypass"

    def test_bypass_can_set_the_critical_path(self):
        # Table 2 at 0.18 um: the 8-way bypass (1056.4) exceeds the
        # window logic (724.0), so it sets the critical path but not
        # the clock bound.
        path = critical_path(MACHINE_REGISTRY["baseline"](), TECH_018)
        assert path.clock_ps == pytest.approx(724.0, abs=0.05)
        assert path.critical_path_ps == pytest.approx(1056.4, abs=0.05)
        assert path.critical_structure.structure == "bypass"

    def test_atomic_flags_follow_section_4_5(self):
        path = critical_path(MACHINE_REGISTRY["baseline"](), TECH_018)
        by_structure = {}
        for entry in path.structures:
            by_structure.setdefault(entry.structure, entry)
        assert by_structure["window"].atomic
        assert by_structure["bypass"].atomic
        assert not by_structure["rename"].atomic
        assert not by_structure["regfile"].clock_bounding
        assert not by_structure["cache"].clock_bounding

    def test_rows_and_report_cover_every_structure(self):
        path = critical_path(MACHINE_REGISTRY["clustered"](), TECH_018)
        rows = path.rows()
        assert len(rows) == len(path.structures)
        report = path.format_report()
        for label, _delay, _flags in rows:
            assert label in report
        assert "clock bound" in report
        assert "critical path" in report

    def test_geometry_is_derived_not_retyped(self):
        # Shrinking a cluster's FU count must shrink its effective
        # issue width (and so its window-logic delay) without any
        # caller passing widths around.
        wide = MACHINE_REGISTRY["baseline"]()
        narrow = MACHINE_REGISTRY["baseline"](issue_width=4)
        assert clock_ps(narrow, TECH_018) < clock_ps(wide, TECH_018)
        assert narrow.cluster_issue_widths == (4,)


class TestThinConsumers:
    def test_conventional_clock_matches_critical_path(self):
        for window in (8, 16, 32, 64, 128):
            config = MACHINE_REGISTRY["baseline"](window_size=window)
            assert conventional_clock_ps(TECH_018, 8, window) == pytest.approx(
                clock_ps(config, TECH_018)
            )

    def test_dependence_clock_matches_critical_path(self):
        config = MACHINE_REGISTRY["dependence"]()
        assert dependence_clock_ps(TECH_018, 8) == pytest.approx(
            clock_ps(config, TECH_018)
        )
