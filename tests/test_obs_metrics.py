"""Tests for the metrics registry and snapshot/merge semantics.

The acceptance property for the whole backbone lives here: merging
two (or N) worker snapshots is **byte-identical regardless of
arrival order**, so parallel campaigns report exact metrics.
"""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    canonical_labels,
    format_snapshot,
    get_registry,
    set_registry,
)


class TestLabels:
    def test_canonical_labels_sorted_pairs(self):
        assert canonical_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_empty_and_none_are_unlabeled(self):
        assert canonical_labels(None) == ()
        assert canonical_labels({}) == ()

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ValueError, match="label name"):
            canonical_labels({"not-valid": 1})

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="metric name"):
            MetricsRegistry().counter("bad-name")


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("cells_total", "help text")
        counter.inc(2, {"source": "cache"})
        counter.inc(1, {"source": "cache"})
        counter.inc(5, {"source": "simulated"})
        assert counter.value({"source": "cache"}) == 3
        assert counter.value({"source": "simulated"}) == 5
        assert counter.value({"source": "unknown"}) == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("c", "x") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c")


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.5)
        gauge.set(2.0)
        assert gauge.value() == 2.0

    def test_non_finite_rejected(self):
        gauge = MetricsRegistry().gauge("g")
        with pytest.raises(ValueError, match="finite"):
            gauge.set(float("nan"))
        with pytest.raises(ValueError, match="finite"):
            gauge.set(float("inf"))


class TestHistogram:
    def test_observations_bucketed_with_overflow(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        sample = histogram.samples[()]
        assert sample.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert sample.count == 4
        assert sample.total == pytest.approx(106.5)

    def test_buckets_must_strictly_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h2", buckets=())

    def test_bucket_mismatch_on_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_default_buckets(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.buckets == DEFAULT_SECONDS_BUCKETS


class TestSnapshot:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("cells_total", "cells").inc(3, {"source": "cache"})
        registry.gauge("ipc").set(1.25, {"machine": "baseline"})
        registry.histogram("seconds", buckets=(0.1, 1.0)).observe(0.05)
        return registry

    def test_round_trip(self):
        snapshot = self.make_registry().snapshot()
        clone = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert clone == snapshot
        assert clone.canonical_json() == snapshot.canonical_json()

    def test_foreign_payload_rejected(self):
        with pytest.raises(ValueError, match="not a metrics snapshot"):
            MetricsSnapshot.from_dict({"kind": "other"})
        with pytest.raises(ValueError, match="schema"):
            MetricsSnapshot.from_dict(
                {"kind": "repro-metrics-snapshot", "schema": 999}
            )
        with pytest.raises(ValueError, match="JSON object"):
            MetricsSnapshot.from_dict([1, 2])

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(5.0)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(2.0)
        b.histogram("h", buckets=(1.0,)).observe(7.0)

        merged = MetricsRegistry()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        assert merged.value("c") == 5  # counters add
        assert merged.value("g") == 5.0  # gauges take the max
        sample = merged.labeled_values("c")  # counters only
        assert sample[()] == 5
        snapshot = merged.snapshot()
        histogram = snapshot.metrics["h"]["samples"]["[]"]
        assert histogram["counts"] == [1, 1]
        assert histogram["count"] == 2

    def test_merge_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.merge_snapshot(a.snapshot())
        with pytest.raises(ValueError, match="buckets"):
            target.merge_snapshot(b.snapshot())

    def test_unknown_kind_rejected_on_merge(self):
        snapshot = MetricsSnapshot(
            {"x": {"kind": "mystery", "help": "", "samples": {}}}
        )
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricsRegistry().merge_snapshot(snapshot)


class TestOrderIndependentMerge:
    """PR acceptance: worker-snapshot merges are byte-identical for
    every arrival order, including float-valued samples where naive
    fold order would change the bits."""

    def worker_snapshots(self):
        snapshots = []
        # Float values chosen so (a + b) + c != a + (b + c) bitwise.
        for seconds in (0.1, 0.2, 0.3, 1e-9):
            registry = MetricsRegistry()
            registry.counter("sim_wall_seconds_total").inc(seconds)
            registry.counter("cells_total").inc(1, {"source": "simulated"})
            registry.gauge("ipc").set(seconds * 10)
            registry.histogram("cell_seconds",
                               buckets=(0.15, 0.25)).observe(seconds)
            snapshots.append(registry.snapshot())
        return snapshots

    def test_two_worker_merge_byte_identical(self):
        a, b = self.worker_snapshots()[:2]
        forward = MetricsSnapshot.merge_all([a, b]).canonical_json()
        reverse = MetricsSnapshot.merge_all([b, a]).canonical_json()
        assert forward == reverse

    def test_every_permutation_byte_identical(self):
        import itertools

        snapshots = self.worker_snapshots()
        reference = MetricsSnapshot.merge_all(snapshots).canonical_json()
        for order in itertools.permutations(snapshots):
            assert MetricsSnapshot.merge_all(order).canonical_json() == (
                reference
            )

    def test_pairwise_merge_matches_merge_all(self):
        a, b = self.worker_snapshots()[:2]
        assert a.merge(b) == MetricsSnapshot.merge_all([b, a])


class TestFormatting:
    def test_empty_snapshot_renders_placeholder(self):
        text = format_snapshot(MetricsRegistry().snapshot())
        assert "(no metrics recorded)" in text

    def test_series_render_with_labels_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("cells_total").inc(4, {"source": "cache"})
        registry.histogram("seconds", buckets=(1.0,)).observe(0.5)
        text = format_snapshot(registry.snapshot())
        assert 'cells_total{source="cache"}' in text
        assert "count=1" in text


class TestProcessRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
