"""Tests for repro.delay: the Section 4 delay models against the paper.

The hard anchors (Tables 1, 2, 4 and the derived Section 5 ratios) must
reproduce to tight tolerances; figure-derived shape claims are checked
with looser bands.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.delay import (
    BypassDelayModel,
    RenameDelayModel,
    ReservationTableDelayModel,
    SelectionDelayModel,
    WakeupDelayModel,
)
from repro.delay.calibration import TABLE2_PS
from repro.delay.summary import (
    clock_ratio_dependence_based,
    dependence_based_window_logic,
    max_clock_improvement_4way,
    overall_delays,
    window_logic_delay,
)
from repro.technology import TECH_018, TECH_035, TECH_080, TECHNOLOGIES, technology_by_feature_size

DESIGN_POINTS = [(4, 32), (8, 64)]


def tech_named(name):
    return {t.name: t for t in TECHNOLOGIES}[name]


class TestTable2Anchors:
    """Table 2 must reproduce at all six design points."""

    @pytest.mark.parametrize("tech_name", list(TABLE2_PS))
    @pytest.mark.parametrize("point", DESIGN_POINTS)
    def test_rename(self, tech_name, point):
        expected = TABLE2_PS[tech_name][point][0]
        model = RenameDelayModel(tech_named(tech_name))
        assert model.total(point[0]) == pytest.approx(expected, rel=0.005)

    @pytest.mark.parametrize("tech_name", list(TABLE2_PS))
    @pytest.mark.parametrize("point", DESIGN_POINTS)
    def test_window_logic(self, tech_name, point):
        expected = TABLE2_PS[tech_name][point][1]
        measured = window_logic_delay(tech_named(tech_name), *point)
        assert measured == pytest.approx(expected, rel=0.005)

    @pytest.mark.parametrize("tech_name", list(TABLE2_PS))
    @pytest.mark.parametrize("point", DESIGN_POINTS)
    def test_bypass(self, tech_name, point):
        expected = TABLE2_PS[tech_name][point][2]
        model = BypassDelayModel(tech_named(tech_name))
        assert model.total(point[0]) == pytest.approx(expected, rel=0.005)

    def test_summary_critical_path_8way(self):
        # At 8-way/64 in 0.18um the bypass delay (1056 ps) exceeds the
        # window logic (724 ps) -- the paper's headline observation.
        summary = overall_delays(TECH_018, 8, 64)
        assert summary.critical_path_ps == pytest.approx(summary.bypass_ps)
        assert summary.bypass_ps > summary.window_logic_ps

    def test_summary_critical_path_4way(self):
        # At 4-way/32 the window logic dominates.
        summary = overall_delays(TECH_018, 4, 32)
        assert summary.critical_path_ps == pytest.approx(summary.window_logic_ps)


class TestRenameModel:
    def test_linear_growth_with_issue_width(self):
        model = RenameDelayModel(TECH_018)
        deltas = [model.total(i + 1) - model.total(i) for i in range(2, 12)]
        assert all(d >= 0 for d in deltas)
        # Effectively linear: successive increments vary slowly.
        assert max(deltas) < 2.5 * min(deltas) + 1e-9

    def test_components_sum_to_total(self):
        model = RenameDelayModel(TECH_035)
        for issue_width in (2, 4, 8):
            parts = model.components(issue_width)
            assert sum(parts.values()) == pytest.approx(model.total(issue_width))

    def test_component_names(self):
        parts = RenameDelayModel(TECH_018).components(4)
        assert set(parts) == {"decoder", "wordline", "bitline", "senseamp"}

    def test_bitline_grows_faster_than_wordline(self):
        # Figure 3: bitline delay increases faster with issue width.
        model = RenameDelayModel(TECH_080)
        at2, at8 = model.components(2), model.components(8)
        bitline_growth = at8["bitline"] - at2["bitline"]
        wordline_growth = at8["wordline"] - at2["wordline"]
        assert bitline_growth > wordline_growth

    def test_bitline_growth_fraction_band(self):
        # Section 4.1.3: bitline delay grows ~37% (0.8um) to ~53%
        # (0.18um) from 2-way to 8-way.  Allow a generous band.
        for tech, low, high in [(TECH_080, 0.15, 0.60), (TECH_018, 0.25, 0.80)]:
            model = RenameDelayModel(tech)
            growth = model.components(8)["bitline"] / model.components(2)["bitline"] - 1
            assert low < growth < high

    def test_faster_technology_is_faster(self):
        for issue_width in (2, 4, 8):
            d = [RenameDelayModel(t).total(issue_width) for t in TECHNOLOGIES]
            assert d[0] > d[1] > d[2]

    def test_rejects_bad_issue_width(self):
        model = RenameDelayModel(TECH_018)
        with pytest.raises(ValueError):
            model.total(0)
        with pytest.raises(TypeError):
            model.total(2.5)  # type: ignore[arg-type]

    def test_geometry_accessor(self):
        geometry = RenameDelayModel(TECH_018).geometry(4)
        assert geometry.read_ports == 8

    @given(st.integers(min_value=1, max_value=32))
    def test_monotone_in_issue_width(self, issue_width):
        model = RenameDelayModel(TECH_018)
        assert model.total(issue_width + 1) >= model.total(issue_width)


class TestWakeupModel:
    def test_growth_bands_at_64_entries(self):
        # Section 4.2.3: ~34% from 2- to 4-way, ~46% from 4- to 8-way.
        model = WakeupDelayModel(TECH_018)
        growth_2_4 = model.total(4, 64) / model.total(2, 64) - 1
        growth_4_8 = model.total(8, 64) / model.total(4, 64) - 1
        assert 0.15 < growth_2_4 < 0.50
        assert 0.30 < growth_4_8 < 0.65

    def test_quadratic_window_dependence_8way(self):
        # Figure 5: visible quadratic curvature for 8-way.
        model = WakeupDelayModel(TECH_018)
        d8, d16 = model.total(8, 8), model.total(8, 16)
        d32, d64 = model.total(8, 32), model.total(8, 64)
        assert (d64 - d32) > (d16 - d8)

    def test_issue_width_affects_more_than_window(self):
        # Section 4.2.3: issue width increases all three components,
        # window size only tag drive.
        model = WakeupDelayModel(TECH_018)
        widen = model.total(8, 32) - model.total(4, 32)
        enlarge = model.total(4, 64) - model.total(4, 32)
        assert widen > enlarge

    def test_components_sum_to_total(self):
        model = WakeupDelayModel(TECH_080)
        parts = model.components(8, 64)
        assert sum(parts.values()) == pytest.approx(model.total(8, 64))
        assert set(parts) == {"tag_drive", "tag_match", "match_or"}

    def test_wire_fraction_rises_with_smaller_feature(self):
        # Figure 6: tag drive + match fraction 52% -> 65%.
        frac_080 = WakeupDelayModel(TECH_080).wire_fraction(8, 64)
        frac_018 = WakeupDelayModel(TECH_018).wire_fraction(8, 64)
        assert frac_018 > frac_080
        assert frac_080 == pytest.approx(0.52, abs=0.08)
        assert frac_018 == pytest.approx(0.65, abs=0.05)

    def test_rejects_bad_parameters(self):
        model = WakeupDelayModel(TECH_018)
        with pytest.raises(ValueError):
            model.total(0, 32)
        with pytest.raises(ValueError):
            model.total(4, 0)

    def test_geometry_accessor(self):
        geometry = WakeupDelayModel(TECH_018).geometry(8, 64)
        assert geometry.window_size == 64

    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=2, max_value=256),
    )
    def test_monotone_in_both_parameters(self, issue_width, window_size):
        for tech in TECHNOLOGIES:
            model = WakeupDelayModel(tech)
            base = model.total(issue_width, window_size)
            assert model.total(issue_width + 1, window_size) >= base
            assert model.total(issue_width, window_size + 8) >= base


class TestSelectionModel:
    def test_same_delay_32_and_64(self):
        model = SelectionDelayModel(TECH_018)
        assert model.total(32) == pytest.approx(model.total(64))

    def test_step_increase_under_100_percent(self):
        # Figure 8: 16 -> 32 and 64 -> 128 grow by less than 2x.
        for tech in TECHNOLOGIES:
            model = SelectionDelayModel(tech)
            assert model.total(32) < 2 * model.total(16)
            assert model.total(128) < 2 * model.total(64)

    def test_logarithmic_growth(self):
        model = SelectionDelayModel(TECH_018)
        assert model.total(256) - model.total(64) == pytest.approx(
            model.total(64) - model.total(16)
        )

    def test_components_sum_to_total(self):
        model = SelectionDelayModel(TECH_035)
        parts = model.components(64)
        assert sum(parts.values()) == pytest.approx(model.total(64))
        assert set(parts) == {"request_propagation", "root", "grant_propagation"}

    def test_root_delay_independent_of_window(self):
        model = SelectionDelayModel(TECH_018)
        assert model.components(16)["root"] == model.components(128)["root"]

    def test_scales_with_technology(self):
        delays = [SelectionDelayModel(t).total(64) for t in TECHNOLOGIES]
        assert delays[0] > delays[1] > delays[2]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SelectionDelayModel(TECH_018).total(0)

    @given(st.integers(min_value=1, max_value=1024))
    def test_monotone_in_window(self, window):
        model = SelectionDelayModel(TECH_018)
        assert model.total(window + 1) >= model.total(window)


class TestBypassModel:
    def test_table1_exact(self):
        model = BypassDelayModel(TECH_018)
        assert model.total(4) == pytest.approx(184.9, abs=0.05)
        assert model.total(8) == pytest.approx(1056.4, abs=0.1)
        assert model.wire_length_lambda(4) == pytest.approx(20500.0)
        assert model.wire_length_lambda(8) == pytest.approx(49000.0)

    def test_technology_invariant(self):
        # Wire delays are constant under the paper's scaling model.
        delays = {BypassDelayModel(t).total(8) for t in TECHNOLOGIES}
        assert len({round(d, 6) for d in delays}) == 1

    def test_grows_faster_than_quadratic(self):
        model = BypassDelayModel(TECH_018)
        assert model.total(8) > 4 * model.total(4)

    def test_path_count(self):
        assert BypassDelayModel(TECH_018).path_count(8) == 128
        assert BypassDelayModel(TECH_018, pipe_stages_after_result=2).path_count(8) == 256

    def test_rejects_bad_issue_width(self):
        with pytest.raises(ValueError):
            BypassDelayModel(TECH_018).total(0)

    @given(st.integers(min_value=1, max_value=32))
    def test_monotone(self, issue_width):
        model = BypassDelayModel(TECH_018)
        assert model.total(issue_width + 1) > model.total(issue_width)


class TestReservationTableModel:
    def test_table4_exact(self):
        model = ReservationTableDelayModel(TECH_018)
        assert model.total(4, physical_registers=80) == pytest.approx(192.1, abs=0.05)
        assert model.total(8, physical_registers=128) == pytest.approx(251.7, abs=0.05)

    def test_entry_organisation(self):
        assert ReservationTableDelayModel.entries(80) == 10
        assert ReservationTableDelayModel.entries(128) == 16
        assert ReservationTableDelayModel.entries(120) == 15

    def test_much_faster_than_window_wakeup(self):
        # Section 5.3: reservation-table wakeup beats even a 4-way,
        # 32-entry window's wakeup delay.
        reservation = ReservationTableDelayModel(TECH_018).total(8, 128)
        window_wakeup = WakeupDelayModel(TECH_018).total(4, 32)
        assert reservation > 0
        assert reservation < window_wakeup + SelectionDelayModel(TECH_018).total(32)

    def test_faster_than_rename(self):
        # Section 5.3: "this delay is smaller than the corresponding
        # register renaming delay."
        for issue_width, regs in [(4, 80), (8, 128)]:
            reservation = ReservationTableDelayModel(TECH_018).total(issue_width, regs)
            rename = RenameDelayModel(TECH_018).total(issue_width)
            assert reservation < rename

    def test_scales_with_technology(self):
        delays = [ReservationTableDelayModel(t).total(8, 128) for t in TECHNOLOGIES]
        assert delays[0] > delays[1] > delays[2]

    def test_rejects_bad_registers(self):
        with pytest.raises(ValueError):
            ReservationTableDelayModel.entries(0)


class TestSummary:
    def test_clock_ratio_25_percent(self):
        # Section 5.5: f_dep / f_window ~ 1.25 at 0.18 um.
        ratio = clock_ratio_dependence_based(TECH_018)
        assert ratio == pytest.approx(724.0 / 578.0, rel=0.01)
        assert ratio == pytest.approx(1.25, abs=0.02)

    def test_max_clock_improvement_39_percent(self):
        # Section 5.3: rename becomes critical -> up to ~39% improvement.
        assert max_clock_improvement_4way(TECH_018) == pytest.approx(0.39, abs=0.02)

    def test_dependence_based_window_logic_much_faster(self):
        dep = dependence_based_window_logic(
            TECH_018, issue_width=8, physical_registers=128, fifo_count=8
        )
        conventional = window_logic_delay(TECH_018, 8, 64)
        assert dep < conventional

    def test_overall_delays_container(self):
        summary = overall_delays(TECH_018, 8, 64)
        assert summary.issue_width == 8
        assert summary.window_size == 64
        assert summary.window_logic_ps == pytest.approx(
            summary.wakeup_ps + summary.select_ps
        )

    def test_lookup_by_feature(self):
        assert technology_by_feature_size(0.18).name == "0.18um"
