"""Tests for experiment-result JSON persistence."""

import json

import pytest

from repro.core.experiments import run_machines
from repro.core.machines import baseline_8way
from repro.core.results_io import (
    FORMAT_VERSION,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    stats_from_dict,
    stats_to_dict,
)
from repro.uarch.stats import SimStats, _COUNTER_FIELDS


@pytest.fixture(scope="module")
def small_result():
    return run_machines(
        {"baseline": baseline_8way()},
        workloads=("li", "compress"),
        max_instructions=1_000,
        name="io-test",
    )


class TestStatsRoundtrip:
    def test_roundtrip_preserves_fields(self):
        stats = SimStats(machine="m", workload="w", committed=10, cycles=5)
        stats.note_stall("window_full")
        stats.note_issue(3)
        clone = stats_from_dict(stats_to_dict(stats))
        assert clone.machine == "m"
        assert clone.ipc == stats.ipc
        assert clone.dispatch_stalls == {"window_full": 1}
        assert clone.issue_histogram == {3: 1}

    def test_histogram_keys_are_ints_after_load(self):
        stats = SimStats()
        stats.note_issue(7)
        clone = stats_from_dict(stats_to_dict(stats))
        assert list(clone.issue_histogram) == [7]

    def test_clock_annotation_round_trips_byte_identically(self):
        stats = SimStats(machine="m", workload="w", committed=10, cycles=5)
        stats.clock_ps = 724.0
        payload = stats_to_dict(stats)
        clone = stats_from_dict(payload)
        assert clone.clock_ps == 724.0
        assert clone.frequency_ghz == pytest.approx(1000.0 / 724.0)
        assert clone.bips == pytest.approx(clone.ipc * clone.frequency_ghz)
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            stats_to_dict(clone), sort_keys=True
        )

    def test_version1_payload_defaults_clock_to_zero(self):
        stats = SimStats(committed=10, cycles=5)
        payload = stats_to_dict(stats)
        del payload["clock_ps"]
        assert stats_from_dict(payload).clock_ps == 0.0


class TestResultRoundtrip:
    def test_file_roundtrip(self, small_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(small_result, path)
        loaded = load_result(path)
        assert loaded.name == small_result.name
        assert loaded.machine_names == small_result.machine_names
        assert loaded.workloads == small_result.workloads
        for workload in loaded.workloads:
            assert loaded.ipc("baseline", workload) == pytest.approx(
                small_result.ipc("baseline", workload)
            )

    def test_loaded_result_renders(self, small_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(small_result, path)
        table = load_result(path).format_table()
        assert "baseline" in table

    def test_json_is_stable(self, small_result, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_result(small_result, a)
        save_result(small_result, b)
        assert a.read_text() == b.read_text()

    def test_version_check(self):
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict({"format_version": 999})

    def test_bad_json_raises_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_result(path)

    def test_format_version_recorded(self, small_result):
        assert result_to_dict(small_result)["format_version"] == FORMAT_VERSION

    def test_clock_fields_bumped_the_format_version(self):
        # Version 3 added clock_ps; older readers must not misread the
        # new payloads as their own format.
        assert FORMAT_VERSION == 3

    def test_older_versions_still_load(self, small_result):
        payload = result_to_dict(small_result)
        payload["format_version"] = 2
        assert result_from_dict(payload).name == small_result.name

    def test_payload_is_plain_json(self, small_result):
        json.dumps(result_to_dict(small_result))  # must not raise


class TestCounterAudit:
    """Every plain counter -- including the cycle-skip attribution the
    optimized simulator adds -- survives serialisation and merging."""

    def _distinct_stats(self, offset: int) -> SimStats:
        stats = SimStats(machine="m", workload=f"w{offset}")
        for position, name in enumerate(_COUNTER_FIELDS):
            setattr(stats, name, offset + 3 * position)
        return stats

    def test_every_counter_field_round_trips(self):
        stats = self._distinct_stats(offset=11)
        clone = stats_from_dict(stats_to_dict(stats))
        for name in _COUNTER_FIELDS:
            assert getattr(clone, name) == getattr(stats, name), name

    def test_merge_sums_every_counter_field(self):
        left, right = self._distinct_stats(5), self._distinct_stats(40)
        merged = left.merge(right)
        for name in _COUNTER_FIELDS:
            assert getattr(merged, name) == (
                getattr(left, name) + getattr(right, name)
            ), name

    def test_cycle_skip_run_round_trips_byte_identically(self):
        """A run that actually skipped idle cycles serialises losslessly.

        The optimized simulator replicates each skipped cycle's stall
        attribution and issue-histogram rows; the payload must come
        back byte-identical (and still pass the validate() audit) so
        cached campaign results are indistinguishable from live runs.
        """
        from repro.uarch.pipeline import PipelineSimulator
        from repro.workloads import get_trace

        simulator = PipelineSimulator(baseline_8way(), get_trace("li", 2_000))
        stats = simulator.run()
        assert simulator.skipped_cycles > 0  # the scenario is exercised
        payload = stats_to_dict(stats)
        clone = stats_from_dict(payload)
        clone.validate()
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            stats_to_dict(clone), sort_keys=True
        )
