"""Strategy conformance harness.

The scheduler/regfile strategy refactor lets a machine shape swap its
issue logic or register-file model without touching the pipeline.
That flexibility is only safe if every strategy -- including ones the
frozen reference model does *not* cover -- obeys the same contract.
This suite pins that contract for all registered shapes:

* ``SimStats`` schema validity and the stall-cycle partition
  (attribution sums to ``cycles``) on every workload;
* committed-stream equality against the emulator oracle: the trace
  *is* the emulator's committed instruction stream, and
  :func:`~repro.verify.oracle.check_timing_invariants` proves the
  simulator commits exactly that stream, in order, within the retire
  width;
* bit-level determinism (same config + trace -> identical stats);
* byte-identical behaviour of the ``conventional`` and
  ``fifo_steering`` strategies against the frozen reference (the full
  8x7 sweep lives in ``test_fast_reference_equivalence``; this is the
  conformance-level re-assertion);
* behavioural direction checks for the post-reference strategies --
  read-port starvation can only lower IPC, load-delay mispredictions
  can only delay issue -- plus the degenerate-parameter identity:
  ``ports_limited`` with a full complement of ports is behaviourally
  byte-identical to ``unlimited``;
* the config-layer validation rules that keep impossible strategy
  combinations unconstructible.
"""

import pytest

from repro.core.machines import (
    MACHINE_REGISTRY,
    baseline_8way,
    dependence_based_8way,
    load_tracking_8way,
    ports_limited_8way,
)
from repro.uarch.pipeline import PipelineSimulator, simulate
from repro.uarch.pipeline_reference import simulate_reference
from repro.uarch.stats import StallCause
from repro.verify.oracle import check_timing_invariants
from repro.workloads import WORKLOAD_NAMES, get_trace
from tests.machines import ALL_MACHINES, REFERENCE_MACHINES

LENGTH = 1_500

#: The shapes the frozen reference model does not cover: these lean
#: entirely on this harness (plus golden pins) for correctness.
POST_REFERENCE = {
    name: factory
    for name, factory in ALL_MACHINES.items()
    if name not in REFERENCE_MACHINES
}


def test_partition_is_exhaustive():
    """Every registered shape is either reference-covered or here."""
    assert set(POST_REFERENCE) | set(REFERENCE_MACHINES) == set(ALL_MACHINES)
    assert set(POST_REFERENCE) == {"load_tracking", "ports_limited"}


class TestContract:
    """Schema, partition, and oracle checks for the new strategies."""

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    @pytest.mark.parametrize("shape", sorted(POST_REFERENCE))
    def test_oracle_and_schema(self, shape, workload):
        trace = get_trace(workload, LENGTH)
        config = POST_REFERENCE[shape]()
        simulator = PipelineSimulator(config, trace)
        stats = simulator.run()
        # Schema + stall partition: attribution must sum to cycles.
        stats.validate()
        assert stats.committed == len(trace)
        # Lifecycle ordering, in-order commit of the oracle's stream,
        # width enforcement, occupancy bounds.
        failures = check_timing_invariants(simulator, config, trace)
        assert failures == [], f"{shape}/{workload}: {failures}"

    @pytest.mark.parametrize("shape", sorted(POST_REFERENCE))
    def test_deterministic(self, shape):
        trace = get_trace("gcc", LENGTH)
        first = simulate(POST_REFERENCE[shape](), trace).to_dict()
        second = simulate(POST_REFERENCE[shape](), trace).to_dict()
        assert first == second

    @pytest.mark.parametrize("shape", sorted(REFERENCE_MACHINES))
    def test_classic_strategies_match_reference(self, shape):
        trace = get_trace("m88ksim", LENGTH)
        config = REFERENCE_MACHINES[shape]()
        fast = simulate(config, trace).to_dict()
        reference = simulate_reference(config, trace).to_dict()
        assert fast == reference


class TestPortsLimitedBehaviour:
    """Read-port starvation has a provable direction, not a pin.

    A fresh per-cycle budget guarantees at least one issue whenever
    candidates fit their ports, so ``REGFILE_PORT`` never *dominates*
    a full stall cycle -- the observable effect is IPC degradation,
    monotone in the port budget.
    """

    def test_ipc_monotone_in_read_ports(self):
        trace = get_trace("compress", LENGTH)
        ipcs = [
            simulate(ports_limited_8way(read_ports=ports), trace).ipc
            for ports in (2, 4, 6)
        ]
        baseline = simulate(baseline_8way(), trace).ipc
        assert ipcs[0] <= ipcs[1] <= ipcs[2] <= baseline
        # Two ports on an 8-wide machine is a real constraint.
        assert ipcs[0] < baseline

    def test_full_port_complement_is_byte_identical_to_unlimited(self):
        # 2 reads x 8-wide = 16 ports can never bind, so the strategy
        # must be a behavioural no-op (only the machine label differs).
        trace = get_trace("compress", LENGTH)
        limited = simulate(ports_limited_8way(read_ports=16), trace).to_dict()
        unlimited = simulate(baseline_8way(), trace).to_dict()
        limited.pop("machine")
        unlimited.pop("machine")
        assert limited == unlimited

    def test_port_stalls_never_dominate_a_cycle(self):
        trace = get_trace("gcc", LENGTH)
        stats = simulate(ports_limited_8way(read_ports=2), trace)
        assert stats.stall_cycles.get(StallCause.REGFILE_PORT, 0) == 0


class TestLoadDelayTrackingBehaviour:
    def test_holds_consumers_of_predicted_loads(self):
        # m88ksim has enough load-use pairs that prediction visibly
        # holds consumers: SCHED_WAIT cycles must appear.
        trace = get_trace("m88ksim", 4_000)
        stats = simulate(load_tracking_8way(), trace)
        assert stats.stall_cycles.get(StallCause.SCHED_WAIT, 0) > 0

    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_never_beats_the_oracle_scheduler(self, workload):
        # Predicted ready times can only delay issue relative to the
        # conventional broadcast wakeup, never accelerate it.
        trace = get_trace(workload, LENGTH)
        ldt = simulate(load_tracking_8way(), trace).ipc
        conventional = simulate(baseline_8way(), trace).ipc
        assert ldt <= conventional + 1e-9

    def test_cycle_skip_is_disabled(self):
        # Held candidates expire at cycles no completion event marks,
        # so the scheduler opts out of cycle skipping.
        trace = get_trace("li", LENGTH)
        simulator = PipelineSimulator(
            load_tracking_8way(), trace, cycle_skip=True
        )
        simulator.run()
        assert simulator.skipped_cycles == 0

    def test_reference_escape_hatch_refuses_post_reference_configs(self):
        trace = get_trace("li", 200)
        with pytest.raises(ValueError, match="reference"):
            simulate(load_tracking_8way(), trace, fast=False)


class TestConfigValidation:
    """Impossible strategy combinations fail at construction."""

    def test_ldt_requires_single_unsteered_window(self):
        with pytest.raises(ValueError, match="single unsteered"):
            dependence_based_8way(scheduler="load_delay_tracking")

    def test_explicit_classic_must_match_geometry(self):
        with pytest.raises(ValueError, match="contradicts"):
            baseline_8way(scheduler="fifo_steering")
        with pytest.raises(ValueError, match="contradicts"):
            dependence_based_8way(scheduler="conventional")

    def test_unknown_strategy_names_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            baseline_8way(scheduler="oracle")
        with pytest.raises(ValueError, match="unknown regfile"):
            baseline_8way(regfile="infinite")

    def test_ports_limited_needs_two_read_ports(self):
        with pytest.raises(ValueError, match="regfile_read_ports >= 2"):
            ports_limited_8way(read_ports=1)

    def test_unlimited_rejects_a_port_budget(self):
        with pytest.raises(ValueError, match="ports_limited"):
            baseline_8way(regfile="unlimited", regfile_read_ports=4)

    def test_exec_driven_steering_incompatible_with_port_limits(self):
        with pytest.raises(ValueError, match="EXEC_DRIVEN"):
            MACHINE_REGISTRY["exec_steer"](
                regfile="ports_limited", regfile_read_ports=4
            )

    def test_derivation_fills_defaults(self):
        assert baseline_8way().scheduler == "conventional"
        assert dependence_based_8way().scheduler == "fifo_steering"
        assert baseline_8way().regfile == "unlimited"
        # A bare port budget is enough to select the limited model.
        derived = baseline_8way(regfile_read_ports=4)
        assert derived.regfile == "ports_limited"
