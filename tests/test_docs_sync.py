"""Documentation-sync checks: the docs must match the code."""

from pathlib import Path

import pytest

from repro.isa.instructions import OPCODES
from repro.obs.profiling import STAGE_METHODS
from repro.workloads import WORKLOAD_NAMES

DOCS = Path(__file__).resolve().parent.parent / "docs"
ROOT = DOCS.parent


@pytest.fixture(scope="module")
def isa_doc():
    return (DOCS / "isa.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def design_doc():
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def performance_doc():
    return (DOCS / "performance.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def architecture_doc():
    return (DOCS / "architecture.md").read_text(encoding="utf-8")


class TestIsaDoc:
    def test_every_opcode_documented(self, isa_doc):
        missing = [name for name in OPCODES if f"`{name}`" not in isa_doc]
        assert not missing, f"opcodes missing from docs/isa.md: {missing}"

    def test_no_phantom_opcodes(self, isa_doc):
        # Every table row's first cell must be a real opcode (or the
        # documented pseudo 'la').
        for line in isa_doc.splitlines():
            if not line.startswith("| `"):
                continue
            name = line.split("`")[1]
            assert name in OPCODES or name == "la", f"phantom opcode {name!r}"

    def test_register_conventions_documented(self, isa_doc):
        assert "r0" in isa_doc
        assert "$sp" in isa_doc


class TestDesignDoc:
    def test_every_workload_listed(self, design_doc):
        for name in WORKLOAD_NAMES:
            assert name in design_doc

    def test_every_figure_and_table_indexed(self, design_doc):
        for item in ("Fig 3", "Fig 5", "Fig 6", "Fig 8", "Fig 10", "Fig 13",
                     "Fig 15", "Fig 17", "Table 1", "Table 2", "Table 4"):
            assert item in design_doc, f"{item} missing from DESIGN.md"

    def test_substitutions_documented(self, design_doc):
        assert "Hspice" in design_doc
        assert "SPEC" in design_doc

    def test_every_bench_file_exists(self, design_doc):
        for line in design_doc.splitlines():
            if "benchmarks/bench_" not in line:
                continue
            for token in line.split("`"):
                if token.startswith("benchmarks/bench_"):
                    assert (ROOT / token).exists(), f"{token} referenced but missing"


class TestReadme:
    def test_mentions_paper(self, readme):
        assert "Palacharla" in readme
        assert "ISCA 1997" in readme

    def test_install_and_test_commands(self, readme):
        assert "pip install -e ." in readme
        assert "pytest benchmarks/ --benchmark-only" in readme

    def test_every_example_listed(self, readme):
        for script in sorted((ROOT / "examples").glob("*.py")):
            assert script.name in readme, f"{script.name} missing from README"

    def test_architecture_sections_match_packages(self, readme):
        for package in ("technology", "circuits", "delay", "isa", "workloads",
                        "uarch", "analysis", "report", "core", "service"):
            assert f"{package}/" in readme

    def test_performance_section(self, readme):
        assert "## Performance" in readme
        assert "docs/performance.md" in readme
        assert "BENCH_simulator.json" in readme
        assert "--jobs" in readme


class TestPerformanceDoc:
    def test_hot_path_map_matches_profiler(self, performance_doc):
        # The hot-path table must name every STAGE_METHODS entry: both
        # the display label and the actual method the profiler wraps.
        for label, method in STAGE_METHODS:
            assert f"`{label}`" in performance_doc, \
                f"stage label {label!r} missing from docs/performance.md"
            assert f"`{method}`" in performance_doc, \
                f"stage method {method!r} missing from docs/performance.md"

    def test_mentions_the_artifacts(self, performance_doc):
        assert "BENCH_simulator.json" in performance_doc
        assert "benchmarks/bench_simulator_throughput.py" in performance_doc
        assert "tests/test_fast_reference_equivalence.py" in performance_doc
        assert "profile_simulation" in performance_doc

    def test_floor_constants_are_real(self, performance_doc):
        from benchmarks.bench_simulator_throughput import (  # noqa: PLC0415
            MIN_RATE,
            SEED_MIN_RATE,
        )
        assert "MIN_RATE" in performance_doc
        assert MIN_RATE > SEED_MIN_RATE

    def test_bench_record_matches_floors(self):
        import json

        from benchmarks.bench_simulator_throughput import (  # noqa: PLC0415
            MIN_RATE,
            SEED_MIN_RATE,
        )
        payload = json.loads(
            (ROOT / "BENCH_simulator.json").read_text(encoding="utf-8"))
        recorded = payload["recorded"]
        assert recorded["min_rate_floor"] == MIN_RATE
        assert recorded["seed_min_rate_floor"] == SEED_MIN_RATE
        baseline = recorded["baseline_8way"]
        assert baseline["after_inst_per_s"] >= 2 * recorded["seed_min_rate_floor"]
        assert baseline["after_inst_per_s"] >= 2 * baseline["before_inst_per_s"]

    def test_compiled_section_names_the_real_pieces(self, performance_doc):
        assert 'mode="compiled"' in performance_doc
        assert "repro.uarch.compile" in performance_doc
        assert "COMPILED_MIN_RATE" in performance_doc
        assert "COMPILE_VERSION" in performance_doc
        assert "tests/test_compile.py" in performance_doc

    def test_compiled_bench_record_matches_floors(self):
        # The compiled record must show the tentpole speedup (>= 2x
        # the interpreter it replaced, whose rate is its "before"),
        # and the committed floor must match the benchmark constant
        # the regression gate routes "(compiled)" labels to.
        import json

        from benchmarks.bench_simulator_throughput import (  # noqa: PLC0415
            COMPILED_MIN_RATE,
            MIN_RATE,
        )
        payload = json.loads(
            (ROOT / "BENCH_simulator.json").read_text(encoding="utf-8"))
        recorded = payload["recorded"]
        assert recorded["compiled_min_rate_floor"] == COMPILED_MIN_RATE
        assert COMPILED_MIN_RATE == 2 * MIN_RATE
        compiled = recorded["baseline_8way_compiled"]
        assert compiled["before_inst_per_s"] == (
            recorded["baseline_8way"]["after_inst_per_s"]
        )
        assert compiled["after_inst_per_s"] >= 2 * compiled["before_inst_per_s"]

    def test_cross_linked_from_architecture(self, architecture_doc):
        assert "performance.md" in architecture_doc

    def test_links_back(self, performance_doc):
        assert "architecture.md" in performance_doc
        assert "observability.md" in performance_doc


class TestDesignSpaceDoc:
    @pytest.fixture(scope="class")
    def design_space_doc(self):
        return (DOCS / "design_space.md").read_text(encoding="utf-8")

    def test_every_registered_structure_documented(self, design_space_doc):
        from repro.delay.critical_path import DELAY_MODEL_REGISTRY  # noqa: PLC0415

        for structure in DELAY_MODEL_REGISTRY:
            assert f"`{structure}`" in design_space_doc, (
                f"registry structure {structure!r} missing from "
                "docs/design_space.md"
            )

    def test_referenced_files_exist(self, design_space_doc):
        """Every tests/, benchmarks/, or repro/ path the doc names must exist."""
        for line in design_space_doc.splitlines():
            for token in line.split("`"):
                if token.startswith(("tests/", "benchmarks/", "repro/")) \
                        and "<" not in token:
                    candidates = [ROOT / token, ROOT / "src" / token]
                    assert any(c.exists() for c in candidates), (
                        f"{token} referenced in docs/design_space.md but missing"
                    )

    def test_cli_flags_are_real(self, design_space_doc):
        from repro.cli import build_parser  # noqa: PLC0415

        parser = build_parser()
        frontier_args = parser.parse_args(["frontier", "--tech", "all"])
        for flag in ("--tech", "--jobs", "--cache-dir", "--no-cache",
                     "--metrics"):
            assert flag in design_space_doc
            attr = flag.lstrip("-").replace("-", "_")
            assert hasattr(frontier_args, attr), f"{flag} not a frontier flag"
        delay_args = parser.parse_args(["delay", "--machine", "clustered-fifos"])
        assert "--machine" in design_space_doc
        assert delay_args.machine == "clustered-fifos"

    def test_documented_geometry_properties_exist(self, design_space_doc):
        from repro.uarch.config import MachineConfig  # noqa: PLC0415

        for prop in ("cluster_issue_widths", "reservation_tag_count"):
            assert prop in design_space_doc
            assert hasattr(MachineConfig, prop)

    def test_cross_links(self, design_space_doc, architecture_doc, readme):
        assert "architecture.md" in design_space_doc
        assert "testing.md" in design_space_doc
        assert "design_space.md" in architecture_doc
        assert "docs/design_space.md" in readme


class TestTestingDoc:
    @pytest.fixture(scope="class")
    def testing_doc(self):
        return (DOCS / "testing.md").read_text(encoding="utf-8")

    def test_every_suite_file_exists(self, testing_doc):
        """Every tests/ or benchmarks/ path the doc names must exist."""
        for line in testing_doc.splitlines():
            for token in line.split("`"):
                if token.startswith(("tests/", "benchmarks/")) and "<" not in token:
                    matches = list(ROOT.glob(token))
                    assert matches, (
                        f"{token} referenced in docs/testing.md but missing"
                    )

    def test_every_verify_module_documented(self, testing_doc):
        import repro.verify  # noqa: PLC0415

        for module in ("generator", "oracle", "minimize", "selftest"):
            assert f"repro.verify.{module}" in testing_doc
            __import__(f"repro.verify.{module}")

    def test_replay_recipe_flags_are_real(self, testing_doc):
        """The documented replay flags must exist on the fuzz CLI."""
        from repro.cli import build_parser  # noqa: PLC0415

        help_text = build_parser().parse_args(["fuzz", "--cases", "1"])
        for flag in ("--case-seed", "--fifo-only", "--first-case",
                     "--selftest"):
            assert flag in testing_doc
            attr = flag.lstrip("-").replace("-", "_")
            assert hasattr(help_text, attr), f"{flag} not a fuzz CLI flag"

    def test_machine_registry_single_source(self, testing_doc):
        assert "tests/machines.py" in testing_doc
        assert "MACHINE_REGISTRY" in testing_doc

    def test_cross_links(self, testing_doc, architecture_doc, readme):
        assert "architecture.md" in testing_doc
        assert "testing.md" in architecture_doc
        assert "docs/testing.md" in readme


@pytest.fixture(scope="module")
def observability_doc():
    return (DOCS / "observability.md").read_text(encoding="utf-8")


class TestObservabilityDoc:
    def test_every_metric_name_documented(self, observability_doc):
        from repro.obs.profiling import (
            CAMPAIGN_METRIC_NAMES,
            COMPILE_METRIC_NAMES,
            FUZZ_METRIC_NAMES,
            SIMULATION_METRIC_NAMES,
        )

        names = (CAMPAIGN_METRIC_NAMES + COMPILE_METRIC_NAMES
                 + FUZZ_METRIC_NAMES + SIMULATION_METRIC_NAMES)
        missing = [n for n in names if f"`{n}`" not in observability_doc]
        assert not missing, (
            f"metrics missing from docs/observability.md: {missing}")

    def test_cli_surfaces_documented_and_real(self, observability_doc):
        from repro.cli import main

        for surface in ("repro ledger list", "repro ledger show",
                        "repro ledger diff", "repro ledger gc",
                        "repro bench --check", "--progress",
                        "--ledger-dir"):
            assert surface.replace("repro ", "") in observability_doc, surface
        # ...and the documented commands parse (argparse exits 2 on
        # unknown commands/flags; these must not).
        assert main(["ledger", "list", "--limit", "1"]) == 0
        assert main(["bench"]) == 0

    def test_ledger_facts_match_code(self, observability_doc):
        from repro.obs.ledger import (
            DEFAULT_LEDGER_ROOT,
            LEDGER_DIR_ENV,
            Ledger,
        )

        assert LEDGER_DIR_ENV in observability_doc
        assert str(DEFAULT_LEDGER_ROOT) in observability_doc.replace(
            ".repro/ledger/", ".repro/ledger ")
        assert Ledger.FILENAME in observability_doc

    def test_regression_defaults_match_code(self, observability_doc):
        from repro.obs.regression import DEFAULT_THRESHOLD, DEFAULT_WINDOW

        assert f"(default {DEFAULT_WINDOW})" in observability_doc
        assert f"(default {DEFAULT_THRESHOLD})" in observability_doc
        for floor in ("min_rate_floor", "seed_min_rate_floor",
                      "min_warm_speedup_floor"):
            assert f"`{floor}`" in observability_doc

    def test_bench_files_documented_and_present(self, observability_doc):
        from repro.obs.regression import BENCH_FILES

        for name in BENCH_FILES:
            assert f"`{name}`" in observability_doc
            assert (ROOT / name).exists(), name

    def test_referenced_modules_exist(self, observability_doc):
        import importlib

        for module in ("repro.obs.metrics", "repro.obs.ledger",
                       "repro.obs.regression", "repro.obs.export"):
            assert f"`{module}`" in observability_doc
            importlib.import_module(module)


@pytest.fixture(scope="module")
def service_doc():
    return (DOCS / "service.md").read_text(encoding="utf-8")


class TestServiceDoc:
    def test_every_route_documented_and_no_phantom_routes(self, service_doc):
        import re

        from repro.service.schema import ROUTES

        for route in ROUTES:
            assert f"`{route}`" in service_doc, (
                f"route {route!r} missing from docs/service.md")
        # ...and every /v1/... path the doc typesets in backticks is a
        # real route (prefix match covers parameterised examples).
        for path in re.findall(r"`(/v1/[^`?]*)`", service_doc):
            assert any(path == r or path.startswith(r.split("<")[0])
                       for r in ROUTES), f"phantom route {path!r}"

    def test_every_serve_flag_documented_and_real(self, service_doc):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        for flag in ("--host", "--port", "--cache-dir", "--jobs", "--warm",
                     "--instructions", "--queue-depth", "--timeout",
                     "--progress"):
            assert f"`{flag}`" in service_doc, (
                f"serve flag {flag} missing from docs/service.md")
            attr = flag.lstrip("-").replace("-", "_")
            assert hasattr(args, attr), f"{flag} not a serve CLI flag"

    def test_schema_versions_documented(self, service_doc):
        from repro.core import results_io
        from repro.service.schema import SERVICE_SCHEMA

        assert "SERVICE_SCHEMA" in service_doc
        assert f"currently **{SERVICE_SCHEMA}**" in service_doc
        assert "FORMAT_VERSION" in service_doc
        assert f"currently\n  **{results_io.FORMAT_VERSION}**" \
            in service_doc or \
            f"currently **{results_io.FORMAT_VERSION}**" in service_doc
        assert "stats_format" in service_doc

    def test_every_metric_documented(self, service_doc):
        from repro.service.app import SERVICE_METRIC_NAMES

        missing = [n for n in SERVICE_METRIC_NAMES
                   if f"`{n}`" not in service_doc]
        assert not missing, (
            f"metrics missing from docs/service.md: {missing}")

    def test_every_error_code_documented(self, service_doc):
        from repro.service.schema import ERROR_CODES

        for status, code in ERROR_CODES.items():
            assert f"`{code}`" in service_doc, code
            assert str(status) in service_doc, status

    def test_referenced_files_exist(self, service_doc):
        for line in service_doc.splitlines():
            for token in line.split("`"):
                if token.startswith(("tests/", "benchmarks/", "scripts/",
                                     "src/", "repro/")) \
                        and "<" not in token and token.endswith(".py"):
                    candidates = [ROOT / token, ROOT / "src" / token]
                    assert any(c.exists() for c in candidates), (
                        f"{token} referenced in docs/service.md but missing")

    def test_bench_floor_matches_doc_and_record(self, service_doc):
        import json

        from benchmarks.bench_service import MIN_WARM_QPS  # noqa: PLC0415

        assert "min_warm_qps_floor" in service_doc
        assert "MIN_WARM_QPS" in service_doc
        payload = json.loads(
            (ROOT / "BENCH_service.json").read_text(encoding="utf-8"))
        assert payload["recorded"]["min_warm_qps_floor"] == MIN_WARM_QPS
        assert payload["measured"]["warm_qps"] >= MIN_WARM_QPS

    def test_ledger_kind_is_registered(self, service_doc):
        from repro.obs.ledger import RUN_KINDS

        assert "service" in RUN_KINDS
        assert "ledger list" in service_doc

    def test_cross_links(self, service_doc, architecture_doc, readme):
        assert "architecture.md" in service_doc
        assert "observability.md" in service_doc
        assert "service.md" in architecture_doc
        assert "docs/service.md" in readme


@pytest.fixture(scope="module")
def workloads_doc():
    return (DOCS / "workloads.md").read_text(encoding="utf-8")


class TestWorkloadsDoc:
    def test_every_registered_workload_documented(self, workloads_doc):
        from repro.workloads.registry import workload_names

        missing = [name for name in workload_names()
                   if f"`{name}`" not in workloads_doc]
        assert not missing, (
            f"workloads missing from docs/workloads.md: {missing}")

    def test_every_kind_documented(self, workloads_doc):
        from repro.workloads.registry import WORKLOAD_KINDS

        for kind in WORKLOAD_KINDS:
            assert f"`{kind}`" in workloads_doc, kind

    def test_version_constants_match_code(self, workloads_doc):
        from repro.workloads.registry import WORKLOAD_VERSION
        from repro.workloads.trace_format import TRACE_FORMAT_VERSION

        assert "WORKLOAD_VERSION" in workloads_doc
        assert "TRACE_FORMAT_VERSION" in workloads_doc
        assert workloads_doc.count(
            f"currently **{WORKLOAD_VERSION}**") >= 1
        assert f'"version": {TRACE_FORMAT_VERSION},' in workloads_doc

    def test_trace_format_fields_documented(self, workloads_doc):
        for field in ("format", "version", "name", "halted", "count",
                      "pc", "op", "srcs", "dest", "mem", "taken",
                      "next"):
            assert f'"{field}"' in workloads_doc, (
                f"trace-format field {field!r} missing from "
                "docs/workloads.md")

    def test_documented_symbols_exist(self, workloads_doc):
        from repro.workloads.registry import (  # noqa: F401
            register_external_trace,
            workload_identity,
        )
        from repro.workloads.trace_format import (  # noqa: F401
            TraceFormatError,
            convert_gem5_records,
            load_trace,
            save_trace,
        )
        from repro.workloads.zoo import zoo_config  # noqa: F401

        for symbol in ("register_external_trace", "workload_identity",
                       "TraceFormatError", "load_trace", "save_trace",
                       "convert_gem5_records", "zoo_config"):
            assert symbol in workloads_doc, symbol

    def test_cli_flags_are_real(self, workloads_doc):
        from repro.cli import build_parser

        parser = build_parser()
        listing = parser.parse_args(["workloads"])
        assert "--kind" in workloads_doc and hasattr(listing, "kind")
        assert "--profile" in workloads_doc and hasattr(listing, "profile")
        simulate = parser.parse_args(
            ["simulate", "baseline", "--trace-file", "x.jsonl"])
        assert "--trace-file" in workloads_doc
        assert simulate.trace_file == "x.jsonl"
        campaign = parser.parse_args(
            ["campaign", "fig13", "--workloads", "zoo"])
        assert "--workloads" in workloads_doc
        assert campaign.workloads == "zoo"

    def test_referenced_files_exist(self, workloads_doc):
        for line in workloads_doc.splitlines():
            for token in line.split("`"):
                if token.startswith(("tests/", "benchmarks/", "src/")) \
                        and "<" not in token and "." in token:
                    assert (ROOT / token).exists(), (
                        f"{token} referenced in docs/workloads.md but "
                        "missing")

    def test_golden_fixture_exists(self, workloads_doc):
        assert "tests/data/golden_li64.jsonl" in workloads_doc
        assert (ROOT / "tests" / "data" / "golden_li64.jsonl").exists()

    def test_bench_record_matches_floor(self):
        import json

        from benchmarks.bench_workloads import MIN_GEN_RATE  # noqa: PLC0415

        payload = json.loads(
            (ROOT / "BENCH_workloads.json").read_text(encoding="utf-8"))
        recorded = payload["recorded"]
        assert recorded["min_gen_inst_per_s_floor"] == MIN_GEN_RATE
        for label, rate in payload["measured"].items():
            assert rate >= MIN_GEN_RATE, (label, rate)

    def test_cross_links(self, workloads_doc, architecture_doc, readme,
                         service_doc):
        assert "architecture.md" in workloads_doc
        assert "service.md" in workloads_doc
        assert "workloads.md" in architecture_doc
        assert "workloads.md" in service_doc
        assert "docs/workloads.md" in readme


class TestDocsIndex:
    @pytest.fixture(scope="class")
    def index_doc(self):
        return (DOCS / "index.md").read_text(encoding="utf-8")

    def test_every_docs_file_listed(self, index_doc):
        for path in sorted(DOCS.glob("*.md")):
            if path.name == "index.md":
                continue
            assert f"({path.name})" in index_doc, (
                f"docs/{path.name} missing from docs/index.md")

    def test_every_listed_file_exists(self, index_doc):
        import re

        for target in re.findall(r"\]\(([\w./-]+\.md)\)", index_doc):
            resolved = (DOCS / target).resolve()
            assert resolved.exists(), (
                f"docs/index.md links to {target} which does not exist")

    def test_readme_links_the_index(self, readme):
        assert "docs/index.md" in readme


class TestDocLinks:
    """Every relative link across docs/*.md and README.md resolves."""

    @pytest.mark.parametrize(
        "page", sorted(DOCS.glob("*.md")) + [ROOT / "README.md"],
        ids=lambda p: p.name)
    def test_relative_links_resolve(self, page):
        import re

        text = page.read_text(encoding="utf-8")
        broken = []
        for target in re.findall(r"\]\(([^)\s]+)\)", text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (page.parent / target.split("#")[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken relative links in {page.name}: {broken}"


@pytest.fixture(scope="module")
def microarch_doc():
    return (DOCS / "microarchitectures.md").read_text(encoding="utf-8")


class TestMicroarchDoc:
    def test_every_registered_shape_documented(self, microarch_doc):
        from repro.core.machines import MACHINE_REGISTRY

        missing = [
            shape for shape in MACHINE_REGISTRY
            if f"`{shape}`" not in microarch_doc
        ]
        assert not missing, (
            f"shapes missing from docs/microarchitectures.md: {missing}")

    def test_every_machine_name_documented(self, microarch_doc):
        # The doc's shape table carries the config's .name -- the
        # label that appears in campaign results and the ledger.
        from repro.core.machines import MACHINE_REGISTRY

        missing = [
            factory().name for factory in MACHINE_REGISTRY.values()
            if f"`{factory().name}`" not in microarch_doc
        ]
        assert not missing, f"machine names out of sync: {missing}"

    def test_every_strategy_name_documented(self, microarch_doc):
        from repro.uarch.config import REGFILE_NAMES, SCHEDULER_NAMES

        for name in SCHEDULER_NAMES + REGFILE_NAMES:
            assert f"`{name}`" in microarch_doc, name

    def test_documented_stall_causes_are_real(self, microarch_doc):
        from repro.uarch.stats import StallCause

        values = {cause.value for cause in StallCause}
        assert "sched_wait" in values and "`sched_wait`" in microarch_doc
        assert "regfile_port" in values and "`regfile_port`" in microarch_doc

    def test_documented_symbols_exist(self, microarch_doc):
        from repro.delay.critical_path import ldt_window_logic_ps  # noqa: F401
        from repro.uarch.scheduler import (  # noqa: F401
            strategy_identity,
            supports_reference,
        )

        for symbol in ("strategy_identity", "supports_reference",
                       "ldt_window_logic_ps",
                       "_normalize_strategies"):
            assert symbol in microarch_doc, symbol

    def test_referenced_files_exist(self, microarch_doc):
        import re

        for path in re.findall(r"`(src/[\w/]+\.py|tests/[\w/]+\.py)`",
                               microarch_doc):
            assert (ROOT / path).exists(), path

    def test_default_read_ports_match_factory(self, microarch_doc):
        import inspect

        from repro.core.machines import ports_limited_8way

        default = inspect.signature(
            ports_limited_8way).parameters["read_ports"].default
        assert f"(default {default};" in microarch_doc

    def test_cross_links(self, microarch_doc, architecture_doc, readme):
        assert "architecture.md" in microarch_doc
        assert "design_space.md" in microarch_doc
        assert "microarchitectures.md" in architecture_doc
        assert "docs/microarchitectures.md" in readme
