"""The optimized simulator is pinned to the frozen reference model.

``repro.uarch.pipeline`` (pre-analysis arrays, inlined hot paths,
cycle skipping) must produce **byte-identical** ``SimStats`` to
``repro.uarch.pipeline_reference`` -- the seed implementation kept
verbatim as the oracle.  These tests sweep every machine shape times
every workload and compare the full serialised stats dict, not just
IPC: any divergence in stall attribution, histograms, occupancy, or
bypass counts fails.

The cycle-skipping machinery gets its own checks: skipping must not
change the event-tracer timeline (idle cycles emit no events, so the
streams are comparable element by element) and must replicate
per-cause stall totals exactly.
"""

import pytest

from repro.core.machines import baseline_8way, clustered_dependence_8way
from repro.obs import EventTracer
from repro.uarch.pipeline import PipelineSimulator, simulate
from repro.uarch.pipeline_reference import (
    ReferencePipelineSimulator,
    simulate_reference,
)
from repro.workloads import get_trace
from tests.machines import REFERENCE_MACHINES

#: Reduced budget: 8 machines x 7 workloads stay fast while covering
#: every steering/selection/cluster shape the reference models (the
#: post-reference strategies are pinned by the conformance harness
#: and golden IPC pins instead).
LENGTH = 1_200

MACHINES = REFERENCE_MACHINES

WORKLOADS = ("compress", "gcc", "go", "li", "m88ksim", "perl", "vortex")


@pytest.mark.parametrize("machine", sorted(MACHINES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_stats_byte_identical(machine, workload):
    """Full SimStats dict equality, fast vs reference, per cell."""
    trace = get_trace(workload, LENGTH)
    fast = simulate(MACHINES[machine](), trace).to_dict()
    reference = simulate_reference(MACHINES[machine](), trace).to_dict()
    assert fast == reference, (
        f"optimized simulator diverged from reference on "
        f"{machine}/{workload}: "
        + str({k: (fast[k], reference[k])
               for k in reference if fast[k] != reference[k]})
    )


def test_simulate_fast_false_escape_hatch():
    """``simulate(..., fast=False)`` routes to the reference model."""
    trace = get_trace("gcc", LENGTH)
    via_flag = simulate(baseline_8way(), trace, fast=False)
    direct = simulate_reference(baseline_8way(), trace)
    assert via_flag.to_dict() == direct.to_dict()


def test_cycle_skip_off_matches_on():
    """Skipping is a pure fast-forward: on/off runs are identical."""
    trace = get_trace("li", LENGTH)
    config = baseline_8way()
    skipping = PipelineSimulator(config, trace, cycle_skip=True)
    stepping = PipelineSimulator(baseline_8way(), trace, cycle_skip=False)
    assert skipping.run().to_dict() == stepping.run().to_dict()
    assert skipping.skipped_cycles > 0, (
        "expected the skipper to engage on this workload; if machine "
        "defaults changed, pick a cell with idle stretches"
    )
    assert stepping.skipped_cycles == 0


def test_cycle_skip_engages_on_long_stalls():
    """A tiny window forces backpressure; skipped cycles still count
    in the total and the stall partition stays valid."""
    trace = get_trace("compress", LENGTH)
    simulator = PipelineSimulator(baseline_8way(window_size=4), trace)
    stats = simulator.run()
    stats.validate()
    reference = ReferencePipelineSimulator(
        baseline_8way(window_size=4), trace
    ).run()
    assert stats.to_dict() == reference.to_dict()


class TestTracedEquivalence:
    """Cycle skipping under tracing (satellite: tracer timelines)."""

    @pytest.mark.parametrize("machine", ["baseline", "dependence", "clustered"])
    def test_event_timeline_identical(self, machine):
        trace = get_trace("li", LENGTH)
        fast_tracer = EventTracer(capacity=None)
        ref_tracer = EventTracer(capacity=None)
        fast_stats = PipelineSimulator(
            MACHINES[machine](), trace, tracer=fast_tracer
        ).run()
        ref_stats = ReferencePipelineSimulator(
            MACHINES[machine](), trace, tracer=ref_tracer
        ).run()
        assert fast_stats.to_dict() == ref_stats.to_dict()
        fast_events = [
            (e.cycle, e.kind, e.seq, e.cluster, e.detail, e.dur)
            for e in fast_tracer.events
        ]
        ref_events = [
            (e.cycle, e.kind, e.seq, e.cluster, e.detail, e.dur)
            for e in ref_tracer.events
        ]
        assert fast_events == ref_events

    def test_per_cause_stall_totals_identical(self):
        trace = get_trace("go", LENGTH)
        fast = PipelineSimulator(baseline_8way(), trace)
        fast_stats = fast.run()
        ref_stats = ReferencePipelineSimulator(baseline_8way(), trace).run()
        assert fast_stats.stall_cycles == ref_stats.stall_cycles
        assert fast_stats.dispatch_stalls == ref_stats.dispatch_stalls
        assert fast_stats.issue_histogram == ref_stats.issue_histogram
        # The skipped cycles are inside the total, not on top of it.
        assert fast_stats.cycles == ref_stats.cycles


def test_per_instruction_timings_identical():
    """Not just aggregates: per-instruction lifecycle cycles match."""
    trace = get_trace("gcc", LENGTH)
    fast = PipelineSimulator(clustered_dependence_8way(), trace)
    fast.run()
    reference = ReferencePipelineSimulator(clustered_dependence_8way(), trace)
    reference.run()
    assert fast.fetch_cycle == reference.fetch_cycle
    assert fast.dispatch_cycle == reference.dispatch_cycle
    assert fast.issue_cycle == reference.issue_cycle
    assert fast.complete_cycle == reference.complete_cycle
    assert fast.commit_cycle == reference.commit_cycle
    assert fast.cluster_of == reference.cluster_of
