"""The optimized and compiled simulators are pinned to the oracle.

Three models, one contract.  ``repro.uarch.pipeline`` (pre-analysis
arrays, inlined hot paths, cycle skipping) must produce
**byte-identical** ``SimStats`` to ``repro.uarch.pipeline_reference``
-- the seed implementation kept verbatim as the oracle -- and the
per-config compiled pipeline (``repro.uarch.compile``, reached via
``simulate(..., mode="compiled")``) must in turn be byte-identical to
the fast interpreter on every registered shape, whether it genuinely
compiles or falls back.  These tests sweep every machine shape times
every workload and compare the full serialised stats dict, not just
IPC: any divergence in stall attribution, histograms, occupancy, or
bypass counts fails.

The cycle-skipping machinery gets its own checks, in both the
interpreted and compiled models: skipping must not change the
event-tracer timeline (idle cycles emit no events, so the streams are
comparable element by element) and must replicate per-cause stall
totals exactly.
"""

import pytest

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    ports_limited_8way,
)
from repro.obs import EventTracer
from repro.uarch.compile import run_compiled, supports_compile
from repro.uarch.pipeline import PipelineSimulator, simulate
from repro.uarch.pipeline_reference import (
    ReferencePipelineSimulator,
    simulate_reference,
)
from repro.workloads import get_trace
from tests.machines import ALL_MACHINES, REFERENCE_MACHINES

#: Reduced budget: 8 machines x 7 workloads stay fast while covering
#: every steering/selection/cluster shape the reference models (the
#: post-reference strategies are pinned by the conformance harness
#: and golden IPC pins instead).
LENGTH = 1_200

MACHINES = REFERENCE_MACHINES

#: Registered shapes the frozen reference does not model (strategy
#: shapes); the compiled column still pins these to the fast
#: interpreter, so the three-way matrix covers every machine.
NON_REFERENCE_MACHINES = {
    name: factory
    for name, factory in ALL_MACHINES.items()
    if name not in REFERENCE_MACHINES
}

WORKLOADS = ("compress", "gcc", "go", "li", "m88ksim", "perl", "vortex")


def _diff(left: dict, right: dict) -> str:
    return str({k: (left.get(k), right.get(k))
                for k in left.keys() | right.keys()
                if left.get(k) != right.get(k)})


@pytest.mark.parametrize("machine", sorted(MACHINES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_stats_byte_identical(machine, workload):
    """Full SimStats dict equality, reference vs fast vs compiled."""
    trace = get_trace(workload, LENGTH)
    fast = simulate(MACHINES[machine](), trace).to_dict()
    reference = simulate_reference(MACHINES[machine](), trace).to_dict()
    compiled = simulate(MACHINES[machine](), trace, mode="compiled").to_dict()
    assert fast == reference, (
        f"optimized simulator diverged from reference on "
        f"{machine}/{workload}: " + _diff(fast, reference)
    )
    assert compiled == fast, (
        f"compiled simulator diverged from fast on "
        f"{machine}/{workload}: " + _diff(compiled, fast)
    )


@pytest.mark.parametrize("machine", sorted(NON_REFERENCE_MACHINES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_compiled_matches_fast_beyond_reference(machine, workload):
    """The compiled column extends past the reference's coverage:
    strategy shapes (pluggable scheduler / ports-limited regfile) pin
    compiled against fast, so every registered machine is in the
    matrix even where the seed oracle cannot go."""
    trace = get_trace(workload, LENGTH)
    factory = NON_REFERENCE_MACHINES[machine]
    fast = simulate(factory(), trace).to_dict()
    compiled = simulate(factory(), trace, mode="compiled").to_dict()
    assert compiled == fast, (
        f"compiled simulator diverged from fast on "
        f"{machine}/{workload}: " + _diff(compiled, fast)
    )


def test_simulate_fast_false_escape_hatch():
    """``simulate(..., fast=False)`` routes to the reference model."""
    trace = get_trace("gcc", LENGTH)
    via_flag = simulate(baseline_8way(), trace, fast=False)
    direct = simulate_reference(baseline_8way(), trace)
    assert via_flag.to_dict() == direct.to_dict()


def test_cycle_skip_off_matches_on():
    """Skipping is a pure fast-forward: on/off runs are identical."""
    trace = get_trace("li", LENGTH)
    config = baseline_8way()
    skipping = PipelineSimulator(config, trace, cycle_skip=True)
    stepping = PipelineSimulator(baseline_8way(), trace, cycle_skip=False)
    assert skipping.run().to_dict() == stepping.run().to_dict()
    assert skipping.skipped_cycles > 0, (
        "expected the skipper to engage on this workload; if machine "
        "defaults changed, pick a cell with idle stretches"
    )
    assert stepping.skipped_cycles == 0


def test_cycle_skip_engages_on_long_stalls():
    """A tiny window forces backpressure; skipped cycles still count
    in the total and the stall partition stays valid."""
    trace = get_trace("compress", LENGTH)
    simulator = PipelineSimulator(baseline_8way(window_size=4), trace)
    stats = simulator.run()
    stats.validate()
    reference = ReferencePipelineSimulator(
        baseline_8way(window_size=4), trace
    ).run()
    assert stats.to_dict() == reference.to_dict()


class TestTracedEquivalence:
    """Cycle skipping under tracing (satellite: tracer timelines)."""

    @pytest.mark.parametrize("machine", ["baseline", "dependence", "clustered"])
    def test_event_timeline_identical(self, machine):
        trace = get_trace("li", LENGTH)
        fast_tracer = EventTracer(capacity=None)
        ref_tracer = EventTracer(capacity=None)
        compiled_tracer = EventTracer(capacity=None)
        fast_stats = PipelineSimulator(
            MACHINES[machine](), trace, tracer=fast_tracer
        ).run()
        ref_stats = ReferencePipelineSimulator(
            MACHINES[machine](), trace, tracer=ref_tracer
        ).run()
        compiled_stats = simulate(
            MACHINES[machine](), trace, mode="compiled",
            tracer=compiled_tracer,
        )
        assert fast_stats.to_dict() == ref_stats.to_dict()
        assert compiled_stats.to_dict() == fast_stats.to_dict()

        def timeline(tracer):
            return [
                (e.cycle, e.kind, e.seq, e.cluster, e.detail, e.dur)
                for e in tracer.events
            ]

        assert timeline(fast_tracer) == timeline(ref_tracer)
        assert timeline(compiled_tracer) == timeline(ref_tracer)

    def test_compiled_timeline_on_ports_limited(self):
        """A genuinely compiled (not fallen-back) traced run on a
        shape outside the reference's coverage."""
        trace = get_trace("li", LENGTH)
        assert supports_compile(ports_limited_8way())
        fast_tracer = EventTracer(capacity=None)
        compiled_tracer = EventTracer(capacity=None)
        fast_stats = PipelineSimulator(
            ports_limited_8way(), trace, tracer=fast_tracer
        ).run()
        compiled_stats = simulate(
            ports_limited_8way(), trace, mode="compiled",
            tracer=compiled_tracer,
        )
        assert compiled_stats.to_dict() == fast_stats.to_dict()
        fast_events = [
            (e.cycle, e.kind, e.seq, e.cluster, e.detail, e.dur)
            for e in fast_tracer.events
        ]
        compiled_events = [
            (e.cycle, e.kind, e.seq, e.cluster, e.detail, e.dur)
            for e in compiled_tracer.events
        ]
        assert compiled_events == fast_events

    def test_per_cause_stall_totals_identical(self):
        trace = get_trace("go", LENGTH)
        fast = PipelineSimulator(baseline_8way(), trace)
        fast_stats = fast.run()
        ref_stats = ReferencePipelineSimulator(baseline_8way(), trace).run()
        assert fast_stats.stall_cycles == ref_stats.stall_cycles
        assert fast_stats.dispatch_stalls == ref_stats.dispatch_stalls
        assert fast_stats.issue_histogram == ref_stats.issue_histogram
        # The skipped cycles are inside the total, not on top of it.
        assert fast_stats.cycles == ref_stats.cycles


def test_compiled_cycle_skip_off_matches_on():
    """The compiled variants replicate the fast-forward exactly: a
    stepping compiled run equals a skipping one, and both equal the
    interpreter."""
    trace = get_trace("li", LENGTH)
    skipping = PipelineSimulator(baseline_8way(), trace, cycle_skip=True)
    stepping = PipelineSimulator(baseline_8way(), trace, cycle_skip=False)
    skip_stats = run_compiled(skipping)
    step_stats = run_compiled(stepping)
    assert skip_stats.to_dict() == step_stats.to_dict()
    assert skipping.skipped_cycles > 0, (
        "expected the compiled skipper to engage on this workload"
    )
    assert stepping.skipped_cycles == 0
    assert skip_stats.to_dict() == simulate(baseline_8way(), trace).to_dict()


def test_compiled_backpressure_shape():
    """A tiny window forces backpressure inside the compiled step
    function; the stall partition must still match the interpreter."""
    trace = get_trace("compress", LENGTH)
    config = baseline_8way(window_size=4)
    assert supports_compile(config)
    stats = run_compiled(PipelineSimulator(config, trace))
    stats.validate()
    fast = PipelineSimulator(baseline_8way(window_size=4), trace).run()
    assert stats.to_dict() == fast.to_dict()


def test_compiled_per_instruction_timings_identical():
    """The compiled pipeline fills the same per-instruction lifecycle
    arrays the interpreter does, element for element."""
    trace = get_trace("gcc", LENGTH)
    compiled = PipelineSimulator(ports_limited_8way(), trace)
    run_compiled(compiled)
    fast = PipelineSimulator(ports_limited_8way(), trace)
    fast.run()
    assert compiled.fetch_cycle == fast.fetch_cycle
    assert compiled.dispatch_cycle == fast.dispatch_cycle
    assert compiled.issue_cycle == fast.issue_cycle
    assert compiled.complete_cycle == fast.complete_cycle
    assert compiled.commit_cycle == fast.commit_cycle
    assert compiled.cluster_of == fast.cluster_of


def test_per_instruction_timings_identical():
    """Not just aggregates: per-instruction lifecycle cycles match."""
    trace = get_trace("gcc", LENGTH)
    fast = PipelineSimulator(clustered_dependence_8way(), trace)
    fast.run()
    reference = ReferencePipelineSimulator(clustered_dependence_8way(), trace)
    reference.run()
    assert fast.fetch_cycle == reference.fetch_cycle
    assert fast.dispatch_cycle == reference.dispatch_cycle
    assert fast.issue_cycle == reference.issue_cycle
    assert fast.complete_cycle == reference.complete_cycle
    assert fast.commit_cycle == reference.commit_cycle
    assert fast.cluster_of == reference.cluster_of
