"""Tests for the SRC_FIFO table, including the equivalence property:
the table makes exactly the decisions the pipeline's per-producer map
makes, on real workloads."""

import pytest

from repro.core.machines import clustered_dependence_8way, dependence_based_8way
from repro.uarch.depend import NO_PRODUCER, dependence_info
from repro.uarch.pipeline import PipelineSimulator
from repro.uarch.src_fifo import SrcFifoEntry, SrcFifoTable
from repro.workloads import get_trace


class TestTableSemantics:
    def test_empty_at_reset(self):
        table = SrcFifoTable()
        assert table.valid_count() == 0
        assert table.lookup(5) is None

    def test_dispatch_records_writer(self):
        table = SrcFifoTable()
        table.on_dispatch(seq=10, dest=3, cluster=0, fifo=2)
        entry = table.lookup(3)
        assert entry == SrcFifoEntry(cluster=0, fifo=2, writer_seq=10)

    def test_issue_invalidates(self):
        table = SrcFifoTable()
        table.on_dispatch(seq=10, dest=3, cluster=0, fifo=2)
        table.on_issue(seq=10, dest=3)
        assert table.lookup(3) is None

    def test_younger_writer_overwrites(self):
        table = SrcFifoTable()
        table.on_dispatch(seq=10, dest=3, cluster=0, fifo=2)
        table.on_dispatch(seq=11, dest=3, cluster=1, fifo=0)
        assert table.lookup(3).writer_seq == 11

    def test_stale_issue_does_not_invalidate_younger_entry(self):
        # The old writer issuing must not clear the new writer's entry.
        table = SrcFifoTable()
        table.on_dispatch(seq=10, dest=3, cluster=0, fifo=2)
        table.on_dispatch(seq=11, dest=3, cluster=1, fifo=0)
        table.on_issue(seq=10, dest=3)
        assert table.lookup(3).writer_seq == 11

    def test_window_placement_clears_entry(self):
        table = SrcFifoTable()
        table.on_dispatch(seq=10, dest=3, cluster=0, fifo=2)
        table.on_dispatch(seq=11, dest=3, cluster=0, fifo=None)
        assert table.lookup(3) is None

    def test_none_dest_is_noop(self):
        table = SrcFifoTable()
        table.on_dispatch(seq=1, dest=None, cluster=0, fifo=0)
        table.on_issue(seq=1, dest=None)
        assert table.valid_count() == 0

    def test_range_checks(self):
        table = SrcFifoTable(logical_registers=8)
        with pytest.raises(ValueError):
            table.lookup(8)
        with pytest.raises(ValueError):
            table.on_dispatch(seq=0, dest=9, cluster=0, fifo=0)
        with pytest.raises(ValueError):
            SrcFifoTable(logical_registers=0)

    def test_snapshot(self):
        table = SrcFifoTable()
        table.on_dispatch(seq=1, dest=2, cluster=0, fifo=1)
        table.on_dispatch(seq=2, dest=5, cluster=1, fifo=3)
        assert set(table.snapshot()) == {2, 5}


@pytest.mark.parametrize(
    "factory", [dependence_based_8way, clustered_dependence_8way],
    ids=["single-cluster", "two-cluster"],
)
@pytest.mark.parametrize("workload", ["compress", "vortex"])
def test_equivalence_with_pipeline_bookkeeping(factory, workload):
    """Property (Section 5): at every dispatch, SRC_FIFO(src) agrees
    with the pipeline's producer-resident-in-FIFO map -- so the table
    is a faithful implementation of the steering query."""
    trace = get_trace(workload, 1_500)
    info = dependence_info(trace)
    simulator = PipelineSimulator(factory(), trace)
    table = SrcFifoTable()
    mismatches = []
    checks = 0

    original_place = simulator._apply_placement
    original_issue = simulator._issue_one

    def checking_place(seq, placement):
        nonlocal checks
        inst = simulator.insts[seq]
        # Check the steering query BEFORE this instruction updates
        # the table (the hardware reads SRC_FIFO during rename).
        for src, producer in zip(inst.srcs, info.producers[seq]):
            entry = table.lookup(src)
            expected = (
                simulator.fifo_of.get(producer)
                if producer != NO_PRODUCER
                else None
            )
            got = (entry.cluster, entry.fifo) if entry is not None else None
            checks += 1
            if got != expected:
                mismatches.append((seq, src, got, expected))
        original_place(seq, placement)
        table.on_dispatch(seq, inst.dest, placement.cluster, placement.fifo)

    def checking_issue(seq, cluster, fifo_index):
        original_issue(seq, cluster, fifo_index)
        table.on_issue(seq, simulator.insts[seq].dest)

    simulator._apply_placement = checking_place
    simulator._issue_one = checking_issue
    simulator.run()
    assert checks > 500
    assert not mismatches, mismatches[:5]
