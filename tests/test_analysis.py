"""Tests for the trace-analysis package."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    basic_block_lengths,
    branch_profile,
    dependence_distance_histogram,
    memory_profile,
    profile_trace,
    unbounded_dataflow_ilp,
    windowed_dataflow_ilp,
)
from repro.analysis.traces import mean_dependence_distance
from repro.isa import assemble, run_to_trace
from repro.workloads import WORKLOAD_NAMES, SyntheticConfig, get_trace, synthetic_trace


def trace_of(source):
    return run_to_trace(assemble(source))


class TestDependenceDistances:
    def test_adjacent_dependence(self):
        trace = trace_of("li r1, 1\naddu r2, r1, r1\nhalt\n")
        histogram = dependence_distance_histogram(trace)
        assert histogram == {1: 2}  # both operands, distance 1

    def test_distance_counts(self):
        trace = trace_of("li r1, 1\nli r3, 2\naddu r2, r1, r3\nhalt\n")
        histogram = dependence_distance_histogram(trace)
        assert histogram == {2: 1, 1: 1}

    def test_mean_distance_empty(self):
        trace = trace_of("li r1, 1\nhalt\n")
        assert mean_dependence_distance(trace) == 0.0

    def test_workloads_have_short_distances(self):
        # The dependence-based premise: most producers are recent
        # (loop-invariant bases give the raw mean a long tail, so the
        # short-fraction is the meaningful statistic).
        from repro.analysis import short_dependence_fraction

        for name in WORKLOAD_NAMES:
            trace = get_trace(name, 3_000)
            assert short_dependence_fraction(trace, within=8) > 0.45

    def test_short_fraction_validation(self):
        from repro.analysis import short_dependence_fraction

        with pytest.raises(ValueError):
            short_dependence_fraction(trace_of("halt\n"), within=0)
        assert short_dependence_fraction(trace_of("halt\n")) == 0.0


class TestDataflowIlp:
    def test_serial_chain_is_one(self):
        body = "\n".join("addu r1, r1, r2" for _ in range(100))
        trace = trace_of(f"li r1, 0\nli r2, 1\n{body}\nhalt\n")
        assert unbounded_dataflow_ilp(trace) < 1.1
        assert windowed_dataflow_ilp(trace, 64) < 1.2

    def test_independent_code_is_wide(self):
        lines = [f"li r{3 + (i % 20)}, {i}" for i in range(100)]
        trace = trace_of("\n".join(lines) + "\nhalt\n")
        assert unbounded_dataflow_ilp(trace) > 20

    def test_window_bounds_ilp(self):
        trace = get_trace("go", 3_000)
        narrow = windowed_dataflow_ilp(trace, 16)
        wide = windowed_dataflow_ilp(trace, 256)
        assert narrow <= wide + 1e-9

    def test_windowed_at_most_unbounded_plus_boundary(self):
        # Chunk boundaries can only break chains, never join them, so
        # windowed ILP >= unbounded only through boundary resets --
        # for a single chunk they agree.
        trace = get_trace("perl", 100)
        assert windowed_dataflow_ilp(trace, 10_000) == pytest.approx(
            unbounded_dataflow_ilp(trace)
        )

    def test_empty_trace(self):
        trace = trace_of("halt\n")
        assert windowed_dataflow_ilp(trace) == 0.0
        assert unbounded_dataflow_ilp(trace) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_dataflow_ilp(trace_of("halt\n"), 0)


class TestBranchProfile:
    def test_counted_loop(self):
        trace = trace_of(
            "main: li r1, 10\nloop: addiu r1, r1, -1\nbgtz r1, loop\nhalt\n"
        )
        profile = branch_profile(trace)
        assert profile.count == 10
        assert profile.taken_fraction == pytest.approx(0.9)
        assert profile.static_sites == 1
        assert 0.0 <= profile.gshare_accuracy <= 1.0

    def test_jumps_excluded(self):
        trace = trace_of("main: b skip\nskip: halt\n")
        assert branch_profile(trace).count == 0

    def test_workload_branch_sites_plausible(self):
        profile = branch_profile(get_trace("gcc", 3_000))
        assert 3 <= profile.static_sites <= 100


class TestMemoryProfile:
    def test_counts(self):
        trace = trace_of(
            """
            .data
            buf: .space 64
            .text
            main: la r1, buf
            lw r2, 0(r1)
            sw r2, 32(r1)
            lw r3, 0(r1)
            halt
            """
        )
        profile = memory_profile(trace)
        assert profile.loads == 2
        assert profile.stores == 1
        assert profile.unique_words == 2
        assert profile.unique_lines == 2

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            memory_profile(trace_of("halt\n"), line_bytes=0)


class TestBasicBlocks:
    def test_straightline_is_one_block(self):
        trace = trace_of("li r1, 1\nli r2, 2\nli r3, 3\nhalt\n")
        assert basic_block_lengths(trace) == [3]

    def test_loop_blocks(self):
        trace = trace_of(
            "main: li r1, 3\nloop: addiu r1, r1, -1\nbgtz r1, loop\nhalt\n"
        )
        # Block 1: li/addiu/bgtz (3); then addiu/bgtz twice (2, 2).
        assert basic_block_lengths(trace) == [3, 2, 2]


class TestProfileTrace:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_profiles_all_workloads(self, name):
        profile = profile_trace(get_trace(name, 2_000))
        assert profile.length == 2_000
        assert abs(sum(profile.class_mix.values()) - 1.0) < 1e-9
        assert profile.ilp_window_128 <= profile.length
        report = profile.format_report()
        assert name in report
        assert "dataflow ILP" in report

    def test_li_lowest_ilp(self):
        profiles = {
            name: profile_trace(get_trace(name, 3_000)) for name in WORKLOAD_NAMES
        }
        ilps = {name: p.ilp_window_128 for name, p in profiles.items()}
        assert min(ilps, key=ilps.get) == "li"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000), st.integers(min_value=1, max_value=100))
    def test_synthetic_profiles_wellformed(self, length, seed):
        trace = synthetic_trace(SyntheticConfig(length=length, seed=seed))
        profile = profile_trace(trace)
        assert profile.length == length
        assert profile.mean_basic_block >= 0.0
