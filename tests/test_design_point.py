"""DesignPoint: the (MachineConfig x Technology) campaign sweep unit."""

import pytest

from repro.core.aggregate import arithmetic_mean, geometric_mean, mean_ipc
from repro.core.campaign import CampaignCell, ResultCache
from repro.core.design import (
    DesignPoint,
    design_points,
    sweep_design_points,
)
from repro.core.frontier import design_space_frontier
from repro.core.machines import MACHINE_REGISTRY, machine_registry
from repro.technology import TECH_018, TECH_035, TECHNOLOGIES
from repro.uarch.stats import SimStats

WORKLOADS = ("compress", "li")


class TestDesignPoint:
    @pytest.fixture(scope="class")
    def point(self):
        return DesignPoint(config=MACHINE_REGISTRY["baseline"](), tech=TECH_018)

    def test_label_joins_config_and_tech(self, point):
        assert point.label == "baseline-8way-64w@0.18um"

    def test_clock_comes_from_the_critical_path_layer(self, point):
        assert point.clock_ps == pytest.approx(724.0, abs=0.05)
        assert point.frequency_ghz == pytest.approx(1000.0 / 724.0, abs=1e-4)
        assert point.bounding_structure == "cluster0 wakeup+select (8-way/64)"

    def test_bips_is_ipc_times_frequency(self, point):
        assert point.bips(2.0) == pytest.approx(2.0 * point.frequency_ghz)

    def test_is_frozen_and_hashable(self, point):
        with pytest.raises(AttributeError):
            point.tech = TECH_035
        assert point in {point}

    def test_annotate_copies_and_leaves_input_untouched(self, point):
        stats = SimStats(committed=100, cycles=50)
        annotated = point.annotate(stats)
        assert annotated.clock_ps == pytest.approx(point.clock_ps)
        assert annotated.ipc == stats.ipc
        assert stats.clock_ps == 0.0
        assert annotated.bips == pytest.approx(
            annotated.ipc * annotated.frequency_ghz
        )

    def test_design_points_cross_product(self):
        grid = design_points(machine_registry(), techs=TECHNOLOGIES)
        assert len(grid) == 3 * len(MACHINE_REGISTRY)
        labels = [label for label, _ in grid]
        assert len(set(labels)) == len(labels)
        assert "baseline@0.18um" in labels


class TestSweep:
    def test_distinct_configs_simulated_once(self):
        config = MACHINE_REGISTRY["baseline"]()
        points = [
            (f"b@{tech.name}", DesignPoint(config=config, tech=tech))
            for tech in TECHNOLOGIES
        ]
        swept, profile = sweep_design_points(
            points, workloads=WORKLOADS, max_instructions=1_000
        )
        # One config, three technologies: one simulation per workload.
        assert profile.cell_count == len(WORKLOADS)
        assert len(swept) == 3
        ipcs = {item.mean_ipc for item in swept}
        assert len(ipcs) == 1  # IPC is technology-independent
        clocks = [item.clock_ps for item in swept]
        assert clocks == sorted(clocks, reverse=True)  # smaller is faster

    def test_swept_design_carries_annotated_stats(self):
        config = MACHINE_REGISTRY["dependence"]()
        points = [("d", DesignPoint(config=config, tech=TECH_018))]
        swept, _ = sweep_design_points(
            points, workloads=WORKLOADS, max_instructions=1_000
        )
        item = swept[0]
        assert set(item.stats) == set(WORKLOADS)
        for stats in item.stats.values():
            assert stats.clock_ps == pytest.approx(item.clock_ps)
        assert item.mean_ipc == pytest.approx(mean_ipc(item.stats))
        assert item.bips == pytest.approx(
            item.mean_ipc * 1000.0 / item.clock_ps
        )

    def test_warm_cache_sweep_runs_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        machines = machine_registry()
        _, cold = design_space_frontier(
            machines=machines,
            workloads=WORKLOADS,
            max_instructions=1_000,
            cache=cache,
        )
        assert cold.simulated_cells > 0

        def forbidden(cell: CampaignCell) -> dict:
            raise AssertionError(f"warm sweep simulated {cell.key()}")

        warm_points, warm = design_space_frontier(
            machines=machines,
            workloads=WORKLOADS,
            max_instructions=1_000,
            cache=cache,
            runner=forbidden,
        )
        assert warm.simulated_cells == 0
        assert warm.cache_hits == cold.cell_count
        assert len(warm_points) == 3 * len(machines)

    def test_frontier_points_byte_identical_cold_vs_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(workloads=WORKLOADS, max_instructions=1_000, cache=cache)
        cold_points, _ = design_space_frontier(**kwargs)
        warm_points, _ = design_space_frontier(**kwargs)
        assert cold_points == warm_points


class TestAggregate:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_mean_ipc_over_workloads(self):
        stats = {
            "a": SimStats(committed=200, cycles=100),  # IPC 2.0
            "b": SimStats(committed=800, cycles=100),  # IPC 8.0
        }
        assert mean_ipc(stats) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            mean_ipc({})


class TestStatsClockField:
    def test_merge_requires_agreement(self):
        a = SimStats(committed=10, cycles=10)
        b = SimStats(committed=10, cycles=10)
        a.clock_ps = 724.0
        b.clock_ps = 578.0
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_propagates_the_nonzero_clock(self):
        a = SimStats(committed=10, cycles=10)
        b = SimStats(committed=10, cycles=10)
        b.clock_ps = 724.0
        merged = a.merge(b)
        assert merged.clock_ps == pytest.approx(724.0)
        # The counter fields still sum -- clock_ps must not.
        assert merged.committed == 20

    def test_zero_clock_has_zero_frequency_and_bips(self):
        stats = SimStats(committed=10, cycles=10)
        assert stats.frequency_ghz == 0.0
        assert stats.bips == 0.0
