"""The default instruction budget is single-sourced.

``repro.core.experiments.DEFAULT_INSTRUCTIONS`` is the one place the
default dynamic-instruction budget lives; the CLI parsers, the
benchmark harness, and the recording script must all read it from
there rather than restating the magic number.
"""

import importlib.util
from pathlib import Path

from repro.cli import build_parser
from repro.core.experiments import DEFAULT_INSTRUCTIONS

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_module(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_cli_defaults_come_from_experiments():
    parser = build_parser()
    for argv in (
        ["simulate", "baseline", "li"],
        ["stats", "baseline", "li"],
        ["campaign", "fig13"],
    ):
        args = parser.parse_args(argv)
        assert args.instructions == DEFAULT_INSTRUCTIONS, argv


def test_cli_help_states_the_default():
    parser = build_parser()
    sub = parser.parse_args(["campaign", "fig13"])
    assert sub.instructions == DEFAULT_INSTRUCTIONS
    # The help string is generated from the constant, not hand-typed.
    source = (REPO_ROOT / "src" / "repro" / "cli.py").read_text(
        encoding="utf-8"
    )
    assert "default=20_000" not in source
    assert "default=20000" not in source


def test_benchmark_harness_is_single_sourced(monkeypatch):
    conftest = _load_module(
        REPO_ROOT / "benchmarks" / "conftest.py", "bench_conftest_under_test"
    )
    monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS", raising=False)
    assert conftest.bench_instructions() == DEFAULT_INSTRUCTIONS
    monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "123")
    assert conftest.bench_instructions() == 123


def test_record_script_is_single_sourced():
    source = (REPO_ROOT / "scripts" / "record_experiments.py").read_text(
        encoding="utf-8"
    )
    assert "DEFAULT_INSTRUCTIONS" in source
    assert "default=20_000" not in source
    assert "default=20000" not in source
